"""Fig. 11 under process variability: XOR3 delay distributions.

The paper's Fig. 11 transient is a single-corner simulation.  This
experiment reruns its circuit — the 3x3 XOR3 lattice with the 500 kOhm
pull-up, 1.2 V supply and femto-farad load — hundreds of times with the
transistor parameters perturbed per trial (threshold-voltage spread,
beta spread), producing the rise/fall-delay and logic-level distributions a
variability-aware reading of the figure calls for.

Each trial drives a reduced stimulus that toggles a single input
(``a``: 0 -> 1 -> 0 with ``b = c = 0``), so the output — the inverse of
XOR3 — completes exactly one falling and one rising edge.  That keeps a
500-trial study tractable (the full eight-vector exhaustive stimulus would
cost about seven times more per trial) while measuring the same 10-90 %
edges the paper reports.

The study is one declarative ``MonteCarlo(base=Transient(...))`` spec run
through the shared :class:`repro.api.Session`: the lattice circuit is
compiled once, every trial's parameter stacks are sampled from
deterministic per-trial seed substreams, and all trials march their
transients in *lockstep* through the batched engine — each Newton round
one stacked LAPACK call, waveforms evaluated once per step.  The records
are bit-identical to the historical per-trial path (still available via
``workers > 1`` for process fan-out, or ``adaptive=True`` for per-trial
adaptive grids), and an identical re-run replays from the session's
content-hash cache with zero Newton iterations.

Example — the end-to-end 500-trial study::

    from repro.experiments.variability_xor3 import run_variability_xor3

    result = run_variability_xor3(trials=500, seed=2019, workers=4)
    print(result.report())
    print(result.rise_summary.percentiles[95.0])   # 95th-percentile rise time
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional

from repro.analysis.reporting import Table, format_engineering
from repro.analysis.variability import DistributionSummary
from repro.analysis.waveform_metrics import edge_and_level_metrics
from repro.circuits.lattice_netlist import LatticeCircuit, build_lattice_circuit
from repro.circuits.sizing import default_switch_model
from repro.circuits.testbench import InputSequence
from repro.core.lattice import Lattice
from repro.core.library import xor3_lattice_3x3
from repro.spice.elements.switch4t import FourTerminalSwitchModel
from repro.spice.engine import AnalysisEngine
from repro.spice.montecarlo import Gaussian, MonteCarloEngine, MonteCarloResult

#: Default local threshold-voltage spread (30 mV absolute sigma).
DEFAULT_SIGMA_VTH_V = 0.030

#: Default relative beta spread (5 % sigma).
DEFAULT_SIGMA_BETA = 0.05


def _toggle_sequence(
    supply_v: float, step_duration_s: float, transition_s: float
) -> InputSequence:
    """a: 0 -> 1 -> 0 with b = c = 0; the output falls, then rises."""
    return InputSequence.from_assignments(
        ("a", "b", "c"),
        [
            {"a": False, "b": False, "c": False},
            {"a": True, "b": False, "c": False},
            {"a": False, "b": False, "c": False},
        ],
        step_duration_s=step_duration_s,
        high_level_v=supply_v,
        transition_s=transition_s,
    )


def build_variability_bench(
    lattice: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    supply_v: float = 1.2,
    pullup_ohm: float = 500e3,
    step_duration_s: float = 40e-9,
    transition_s: float = 1e-9,
) -> LatticeCircuit:
    """The study's bench (lattice + one-input toggle stimulus) as a factory.

    Module-level so a :class:`repro.api.CircuitSpec` can name it; the
    variability study and its corner cross-checks share the compiled bench
    through the session this way.
    """
    if lattice is None:
        lattice = xor3_lattice_3x3()
    if model is None:
        model = default_switch_model()
    sequence = _toggle_sequence(supply_v, step_duration_s, transition_s=transition_s)
    return build_lattice_circuit(
        lattice,
        model=model,
        input_sequence=sequence,
        supply_v=supply_v,
        pullup_ohm=pullup_ohm,
    )


def variability_circuit_spec(
    lattice: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    supply_v: float = 1.2,
    pullup_ohm: float = 500e3,
    step_duration_s: float = 40e-9,
):
    """The study's :class:`repro.api.CircuitSpec`, parameterized identically
    everywhere.

    Content hashing equalizes implicit and explicit *spec-field* defaults,
    but factory ``params`` are hashed as given — so every caller must spell
    them the same way to share the session-built bench.  This helper is
    that single spelling; :func:`run_variability_xor3` and the examples
    both use it.
    """
    from repro.api import CircuitSpec

    return CircuitSpec(
        build_variability_bench,
        params={
            "lattice": lattice,
            "model": model,
            "supply_v": supply_v,
            "pullup_ohm": pullup_ohm,
            "step_duration_s": step_duration_s,
        },
    )


def delay_metrics_trial(
    engine: AnalysisEngine,
    trial: int,
    output_index: int = 0,
    stop_time_s: float = 120e-9,
    timestep_s: float = 1e-9,
    adaptive: bool = False,
    lte_tolerance_v: float = 2e-3,
) -> Dict[str, float]:
    """One Monte-Carlo trial: transient solve plus edge/level extraction.

    Module-level (and driven through :func:`functools.partial`) so the
    process-pool workers can unpickle it.  Returns the metrics the study
    aggregates; a waveform that never completes an edge reports ``nan`` for
    that delay, which the aggregation layer counts against yield.

    ``adaptive=True`` routes the per-trial transient through the engine's
    LTE step-size controller, which cuts the step count on the long settled
    stretches of the toggle stimulus — the dominant per-trial cost of a
    variability study.
    """
    transient = engine.solve_transient(
        stop_time_s, timestep_s, adaptive=adaptive, lte_tolerance_v=lte_tolerance_v
    )
    return _metrics_from_waveform(
        transient.time_s, transient.solutions[:, output_index], transient.converged
    )


#: Dotted path of the study's waveform-metric hook, as a
#: ``MonteCarlo(base=Transient(...))`` spec names it.
METRIC_HOOK = "repro.analysis.waveform_metrics:edge_and_level_metrics"


def _metrics_from_waveform(time_s, vout, converged: bool) -> Dict[str, float]:
    """Edge/level metrics of one output waveform (shared trial/nominal path).

    The metric set is the public :data:`METRIC_HOOK`
    (:func:`repro.analysis.waveform_metrics.edge_and_level_metrics`) plus
    the convergence flag the spec path appends from the solver statistics.
    """
    return {**edge_and_level_metrics(time_s, vout), "converged": float(converged)}


def _records_from_spec_result(result) -> list:
    """Legacy per-trial record dicts from a ``MonteCarlo(base=Transient(...))``
    spec :class:`~repro.api.results.Result` (metric columns + converged flag)."""
    keys = list(result.meta.get("metric_keys", ()))
    converged = result.arrays["converged"]
    columns = {key: result.arrays[f"metric_{key}"] for key in keys}
    return [
        {
            **{key: float(columns[key][trial]) for key in keys},
            "converged": float(converged[trial]),
        }
        for trial in range(len(converged))
    ]


@dataclass
class VariabilityResult:
    """Delay and level distributions of the XOR3 lattice under spread.

    Attributes
    ----------
    bench:
        The (nominal) lattice circuit that was perturbed.
    montecarlo:
        Raw per-trial records (see :class:`~repro.spice.montecarlo.MonteCarloResult`).
    sigma_vth_v / sigma_beta:
        The applied spreads.
    nominal:
        Metrics of the unperturbed circuit, for reference against the
        distributions.
    """

    bench: LatticeCircuit
    montecarlo: MonteCarloResult
    sigma_vth_v: float
    sigma_beta: float
    nominal: Dict[str, float]

    @property
    def rise_summary(self) -> DistributionSummary:
        return self.montecarlo.summary("rise_time_s")

    @property
    def fall_summary(self) -> DistributionSummary:
        return self.montecarlo.summary("fall_time_s")

    @property
    def swing_summary(self) -> DistributionSummary:
        return self.montecarlo.summary("swing_v")

    def functional_yield(self, min_swing_fraction: float = 0.5) -> float:
        """Fraction of trials whose output swing clears the given fraction
        of the supply (trials without a complete edge count as failures)."""
        return self.montecarlo.yield_fraction(
            "swing_v", lower=min_swing_fraction * self.bench.supply_v
        )

    def report(self) -> str:
        table = Table(
            ["quantity", "nominal", "median", "p5", "p95", "sigma"],
            title=(
                f"XOR3 lattice variability — {self.montecarlo.trials} trials, "
                f"sigma(Vth) = {self.sigma_vth_v * 1e3:.0f} mV, "
                f"sigma(beta)/beta = {self.sigma_beta * 1e2:.0f} %"
            ),
        )
        rows = (
            ("rise time (10-90 %)", "rise_time_s", "s"),
            ("fall time (90-10 %)", "fall_time_s", "s"),
            ("zero-state output", "low_v", "V"),
            ("one-state output", "high_v", "V"),
            ("output swing", "swing_v", "V"),
        )
        for label, key, unit in rows:
            summary = self.montecarlo.summary(key)
            table.add_row(
                [
                    label,
                    format_engineering(self.nominal[key], unit),
                    format_engineering(summary.median, unit),
                    format_engineering(summary.percentiles[5.0], unit),
                    format_engineering(summary.percentiles[95.0], unit),
                    format_engineering(summary.std, unit),
                ]
            )
        yield_line = (
            f"functional yield (swing > half supply): "
            f"{100.0 * self.functional_yield():.1f} %"
        )
        return table.render() + "\n" + yield_line


def run_variability_xor3(
    trials: int = 500,
    seed: int = 2019,
    sigma_vth_v: float = DEFAULT_SIGMA_VTH_V,
    sigma_beta: float = DEFAULT_SIGMA_BETA,
    correlated_beta: bool = False,
    workers: Optional[int] = None,
    lattice: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    supply_v: float = 1.2,
    pullup_ohm: float = 500e3,
    step_duration_s: float = 40e-9,
    timestep_s: float = 1e-9,
    adaptive: bool = False,
    lte_tolerance_v: float = 2e-3,
) -> VariabilityResult:
    """Run the XOR3 variability study.

    Parameters
    ----------
    trials / seed:
        Monte-Carlo trial count and root seed.  Results are bit-identical
        for a given seed, whatever ``workers`` is — and whichever of the
        lockstep-batched or per-trial paths runs the study.
    sigma_vth_v:
        Absolute per-transistor threshold spread [V].
    sigma_beta:
        Relative per-transistor beta spread; ``correlated_beta=True`` turns
        it into a single global (process-wide) draw per trial instead of
        local mismatch.
    workers:
        ``None``/1 (the default) runs the study as one declarative
        ``MonteCarlo(base=Transient(...))`` spec through the shared
        session: all trials march in lockstep through the batched engine
        (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_transient`)
        and an identical re-run replays from the content-hash cache with
        zero Newton iterations.  Larger values keep the historical
        process-pool fan-out of per-trial solves (bit-identical records).
    lattice / model / supply_v / pullup_ohm:
        Circuit configuration (paper defaults).
    step_duration_s / timestep_s:
        Stimulus step length and transient timestep of the reduced
        one-input toggle stimulus.
    adaptive / lte_tolerance_v:
        Route every per-trial transient through the engine's adaptive step
        controller (``timestep_s`` becomes the initial step); cuts the
        per-trial step count on the settled stretches of the stimulus.
        Adaptive grids differ per trial, so this disables the lockstep
        batched path.
    """
    from repro.api import MonteCarlo, Transient, default_session

    session = default_session()
    circuit_spec = variability_circuit_spec(
        lattice=lattice,
        model=model,
        supply_v=supply_v,
        pullup_ohm=pullup_ohm,
        step_duration_s=step_duration_s,
    )
    bench = session.build_circuit(circuit_spec)
    sequence = bench.input_sequence
    output_index = bench.circuit.node_index(bench.output_node)
    analysis = partial(
        delay_metrics_trial,
        output_index=output_index,
        stop_time_s=sequence.total_duration_s,
        timestep_s=timestep_s,
        adaptive=adaptive,
        lte_tolerance_v=lte_tolerance_v,
    )

    # The nominal (unperturbed) reference goes through the declarative API,
    # so an identical re-run replays from the session's content-hash cache.
    nominal_result = session.run(
        Transient(
            circuit=circuit_spec,
            timestep_s=timestep_s,
            adaptive=adaptive,
            lte_tolerance_v=lte_tolerance_v,
        )
    )
    nominal = _metrics_from_waveform(
        nominal_result.arrays["time_s"],
        nominal_result.arrays["solutions"][:, output_index],
        nominal_result.converged,
    )

    perturbations = {
        "mos_vth": Gaussian(sigma=sigma_vth_v),
        "mos_beta": Gaussian(
            sigma=sigma_beta, relative=True, correlated=correlated_beta
        ),
    }
    if adaptive or (workers is not None and workers > 1):
        # Adaptive per-trial grids cannot march in lockstep, and an explicit
        # pool request keeps the historical process fan-out; both produce
        # records bit-identical to the batched path on the same fixed grid.
        montecarlo = MonteCarloEngine(
            bench.circuit, perturbations=perturbations, seed=seed
        ).run(analysis, trials=trials, workers=workers)
    else:
        # The flagship path: the whole study is one declarative
        # MonteCarlo(base=Transient(...)) spec — all trials march in
        # lockstep through the batched engine, and an identical re-run
        # replays from the session cache with zero Newton work.
        study = session.run(
            MonteCarlo(
                base=Transient(circuit=circuit_spec, timestep_s=timestep_s),
                perturbations=perturbations,
                trials=trials,
                seed=seed,
                mode="batched",
                metrics=(METRIC_HOOK,),
                metric_node=bench.output_node,
            )
        )
        montecarlo = MonteCarloResult(
            trials=trials, seed=seed, records=_records_from_spec_result(study)
        )

    return VariabilityResult(
        bench=bench,
        montecarlo=montecarlo,
        sigma_vth_v=sigma_vth_v,
        sigma_beta=sigma_beta,
        nominal=nominal,
    )
