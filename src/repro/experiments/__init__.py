"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning a structured result
object with a ``report()`` method that prints the rows the paper reports.
The benchmarks in ``benchmarks/`` call these functions (timing them with
pytest-benchmark) and the test-suite checks the qualitative claims on the
returned structures.

===============================  =======================================
Module                           Paper content
===============================  =======================================
``table1_products``              Table I — products of the m x n lattice
``table2_devices``               Table II — device structures
``fig3_xor3``                    Fig. 3 — XOR3 on 3x4 and 3x3 lattices
``fig5to7_device_iv``            Figs. 5-7 — device I-V curves / Vth / on-off
``fig8_current_density``         Fig. 8 — current-density profiles
``fig9_switch_model``            Fig. 9 — six-MOSFET switch model
``fig10_curve_fit``              Fig. 10 — level-1 fit to the Id-Vd curve
``fig11_xor3_transient``         Fig. 11 — XOR3 lattice transient
``fig12_series_switches``        Fig. 12 — series-switch drive study
``variability_xor3``             Fig. 11 under Vth/beta process spread
===============================  =======================================
"""

from repro.experiments.table1_products import Table1Result, run_table1
from repro.experiments.table2_devices import Table2Result, run_table2
from repro.experiments.fig3_xor3 import Fig3Result, run_fig3
from repro.experiments.fig5to7_device_iv import DeviceIVResult, run_device_iv, run_all_device_iv
from repro.experiments.fig8_current_density import Fig8Result, run_fig8
from repro.experiments.fig9_switch_model import Fig9Result, run_fig9
from repro.experiments.fig10_curve_fit import Fig10Result, run_fig10
from repro.experiments.fig11_xor3_transient import Fig11Result, run_fig11
from repro.experiments.fig12_series_switches import (
    Fig12Result,
    run_fig12,
    run_fig12_drive_curves,
)
from repro.experiments.terminal_configurations import (
    ConfigurationSweepResult,
    run_terminal_configuration_sweep,
)
from repro.experiments.variability_xor3 import (
    VariabilityResult,
    run_variability_xor3,
)

__all__ = [
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Fig3Result",
    "run_fig3",
    "DeviceIVResult",
    "run_device_iv",
    "run_all_device_iv",
    "Fig8Result",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Fig11Result",
    "run_fig11",
    "Fig12Result",
    "run_fig12",
    "run_fig12_drive_curves",
    "ConfigurationSweepResult",
    "run_terminal_configuration_sweep",
    "VariabilityResult",
    "run_variability_xor3",
]
