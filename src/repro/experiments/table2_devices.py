"""Table II — structural features of the three four-terminal devices."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import Table
from repro.devices.materials import HFO2, SIO2
from repro.devices.specs import DeviceSpec, TABLE_II_SPECS
from repro.tcad.electrostatics import MOSElectrostatics


@dataclass
class Table2Result:
    """The device inventory plus derived electrostatics.

    Attributes
    ----------
    rows:
        One dict per device with the Table II fields.
    electrostatics:
        Derived quantities (Cox, Vth) per device/gate-material combination,
        keyed by ``"<kind>/<material>"``.
    """

    rows: List[Dict[str, str]]
    electrostatics: Dict[str, MOSElectrostatics]

    def report(self) -> str:
        columns = list(self.rows[0].keys())
        table = Table(columns, title="Table II — structural features of the four-terminal devices")
        for row in self.rows:
            table.add_row([row[c] for c in columns])
        derived = Table(
            ["device/gate", "Cox [mF/m^2]", "Vth [V]"],
            title="Derived electrostatics (model inputs for Figs. 5-7)",
        )
        for name, es in sorted(self.electrostatics.items()):
            derived.add_row([name, f"{es.oxide_capacitance_f_per_m2 * 1e3:.3f}", f"{es.threshold_v:+.3f}"])
        return table.render() + "\n\n" + derived.render()


def run_table2() -> Table2Result:
    """Collect the Table II rows and the derived electrostatics."""
    rows = [spec.table_row() for spec in TABLE_II_SPECS]
    electrostatics = {}
    for spec in TABLE_II_SPECS:
        for dielectric in (HFO2, SIO2):
            variant = spec.with_gate_dielectric(dielectric)
            electrostatics[variant.name] = MOSElectrostatics.from_spec(variant)
    return Table2Result(rows=rows, electrostatics=electrostatics)
