"""Fig. 12 — drive capability of four-terminal switches in series.

Two measurements on chains of 1..21 switches with all gates ON:

* Fig. 12a — current through the chain at a constant 1.2 V supply;
* Fig. 12b — supply voltage required for a constant target current.

The paper takes the constant-current target as "the value for two switches at
1.2 V" (5.5 uA on their model); the experiment follows that *definition* and
additionally records the value in the paper's units so both can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import Table, format_engineering
from repro.circuits.series_chain import (
    build_series_chain,
    voltage_versus_chain_length,
)
from repro.circuits.sizing import default_switch_model
from repro.spice.elements.switch4t import FourTerminalSwitchModel

#: Chain lengths reported in Fig. 12 (1 to 21 switches, odd counts).
DEFAULT_LENGTHS = tuple(range(1, 22, 2))

#: Values the paper reports, for side-by-side comparison in reports.
PAPER_CURRENT_1_SWITCH_A = 11.12e-6
PAPER_CURRENT_21_SWITCHES_A = 0.52e-6
PAPER_TARGET_CURRENT_A = 5.5e-6
PAPER_VOLTAGE_21_SWITCHES_V = 2.5


@dataclass
class Fig12Result:
    """Series-switch drive study results.

    Attributes
    ----------
    lengths:
        The chain lengths simulated.
    currents_a:
        Fig. 12a — chain current at the constant supply voltage, per length.
    target_current_a:
        The constant-current target used for Fig. 12b (the current of the
        two-switch chain at the nominal supply, per the paper's definition).
    voltages_v:
        Fig. 12b — supply voltage needed for the target current, per length.
    supply_v:
        The nominal supply of the constant-voltage test (1.2 V).
    """

    lengths: List[int]
    currents_a: Dict[int, float]
    target_current_a: float
    voltages_v: Dict[int, float]
    supply_v: float

    def current_ratio(self) -> float:
        """I(1 switch) / I(longest chain) — the paper's ~21x decrease."""
        first = self.currents_a[self.lengths[0]]
        last = self.currents_a[self.lengths[-1]]
        return first / last if last > 0 else float("inf")

    def voltage_growth(self) -> float:
        """V(longest chain) / V(shortest chain) of the constant-current test."""
        first = self.voltages_v[self.lengths[0]]
        last = self.voltages_v[self.lengths[-1]]
        return last / first if first > 0 else float("inf")

    def is_sublinear_voltage(self) -> bool:
        """True when the required voltage grows slower than the chain length.

        This is the paper's headline observation: the supply voltage required
        does not scale linearly with the number of series switches, so large
        lattices remain drivable.
        """
        n_ratio = self.lengths[-1] / self.lengths[0]
        return self.voltage_growth() < n_ratio

    def report(self) -> str:
        table = Table(
            ["switches in series", f"I @ {self.supply_v:g} V", "V for constant current"],
            title=(
                "Fig. 12 — series-switch drive study "
                f"(constant-current target {format_engineering(self.target_current_a, 'A')})"
            ),
        )
        for length in self.lengths:
            table.add_row(
                [
                    length,
                    format_engineering(self.currents_a[length], "A"),
                    f"{self.voltages_v[length]:.3f} V",
                ]
            )
        footer = (
            f"I(1)/I({self.lengths[-1]}) = {self.current_ratio():.1f}  "
            f"(paper: {PAPER_CURRENT_1_SWITCH_A / PAPER_CURRENT_21_SWITCHES_A:.1f});  "
            f"V({self.lengths[-1]})/V({self.lengths[0]}) = {self.voltage_growth():.2f}, "
            f"sub-linear in N: {'yes' if self.is_sublinear_voltage() else 'NO'}"
        )
        return table.render() + "\n" + footer


def run_fig12(
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    supply_v: float = 1.2,
    model: Optional[FourTerminalSwitchModel] = None,
    target_current_a: Optional[float] = None,
    max_voltage_v: float = 6.0,
) -> Fig12Result:
    """Run both Fig. 12 measurements.

    ``target_current_a`` defaults to the paper's definition — the current of
    the two-switch chain at the nominal supply voltage.
    """
    from repro.api import CircuitSpec, DCOp, default_session, expand_grid

    lengths = sorted(set(int(n) for n in lengths))
    if not lengths or lengths[0] < 1:
        raise ValueError("chain lengths must be positive integers")
    if model is None:
        model = default_switch_model()

    # Fig. 12a as a declarative grid: one DCOp spec per chain length, all
    # dispatched (and content-hash cached) through the shared session.
    session = default_session()
    template = DCOp(
        circuit=CircuitSpec(
            build_series_chain,
            params={
                "num_switches": lengths[0],
                "model": model,
                "drive_v": supply_v,
                "gate_v": supply_v,
            },
        )
    )
    specs = expand_grid(template, {"circuit.num_switches": lengths})
    study = session.run_many(specs)
    currents = {
        length: abs(float(result.source_current("v_drive")))
        for length, result in zip(lengths, study)
    }

    if target_current_a is None:
        two_switch = build_series_chain(2, model=model)
        target_current_a = two_switch.chain_current(supply_v, supply_v)

    voltages = voltage_versus_chain_length(
        lengths, target_current_a, model=model, max_voltage_v=max_voltage_v
    )
    return Fig12Result(
        lengths=list(lengths),
        currents_a=dict(currents),
        target_current_a=float(target_current_a),
        voltages_v=dict(voltages),
        supply_v=supply_v,
    )


def run_fig12_drive_curves(
    num_switches: int = 11,
    gate_levels: Sequence[float] = (0.6, 0.9, 1.2, 1.5, 1.8),
    max_drive_v: float = 1.2,
    points: int = 25,
    model: Optional[FourTerminalSwitchModel] = None,
) -> "Dict[float, Any]":
    """Chain I-V curves at several gate voltages (a Fig. 12 extension).

    A declarative grid of :class:`repro.api.DCSweep` specs — one per gate
    level, each on its own spec-built chain — dispatched through the shared
    session, quantifying how much drive capability a higher gate overdrive
    buys a long chain.

    .. versionchanged::
        Returns one :class:`repro.api.Result` per gate level (previously a
        :class:`~repro.spice.dcsweep.DCSweepResult`); currents come out of
        ``result.source_current("v_drive")``, solutions out of
        ``result.arrays["solutions"]``.  The spec form trades the old
        single-compiled-circuit warm seeding for content-hash caching and
        executor fan-out; callers who want the imperative family sweep on
        one compiled circuit should use
        :meth:`repro.circuits.series_chain.SeriesChainCircuit.sweep_drive_family`.
    """
    from repro.api import CircuitSpec, DCSweep, default_session, expand_grid

    if model is None:
        model = default_switch_model()
    values = np.linspace(0.0, max_drive_v, points)
    template = DCSweep(
        circuit=CircuitSpec(
            build_series_chain,
            params={"num_switches": num_switches, "model": model},
        ),
        source="v_drive",
        values=values,
    )
    specs = expand_grid(template, {"circuit.gate_v": [float(g) for g in gate_levels]})
    study = default_session().run_many(specs)
    return {float(gate_v): result for gate_v, result in zip(gate_levels, study)}
