"""Section III-B sweep over the sixteen drain/source/float terminal cases.

The paper explores every device in sixteen operating conditions (1 drain -
1 source up to 3 drains - 1 source) and reports "good correlations between
the symmetric simulations" — i.e. configurations related by the device's
symmetry carry essentially the same current, which is what qualifies the
structure as a four-terminal *switch*.  This harness runs all sixteen cases
on one device and quantifies that correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import Table, format_engineering
from repro.devices.specs import DeviceSpec, device_spec
from repro.devices.terminals import ALL_TERMINAL_CONFIGURATIONS, TerminalConfiguration
from repro.tcad.simulator import DeviceSimulator


@dataclass
class ConfigurationSweepResult:
    """On/off drain currents of one device across all sixteen configurations.

    Attributes
    ----------
    spec:
        The simulated device.
    on_currents_a / off_currents_a:
        Total drain current per configuration code with the gate at 5 V / in
        the off state (Vds = 5 V).
    """

    spec: DeviceSpec
    on_currents_a: Dict[str, float]
    off_currents_a: Dict[str, float]

    def _category_groups(self) -> Dict[str, List[str]]:
        groups: Dict[str, List[str]] = {}
        for code, configuration in ALL_TERMINAL_CONFIGURATIONS.items():
            groups.setdefault(configuration.category(), []).append(code)
        return groups

    def per_drain_current(self, code: str) -> float:
        """On-current divided by the number of drain terminals."""
        configuration = ALL_TERMINAL_CONFIGURATIONS[code]
        return self.on_currents_a[code] / len(configuration.drains)

    def category_spread(self, category: str) -> float:
        """Relative spread of per-drain on-currents within one category.

        Configurations in the same category are related by the device's
        symmetry, so a small spread is the paper's "good correlation between
        the symmetric simulations".
        """
        codes = self._category_groups()[category]
        values = [self.per_drain_current(code) for code in codes]
        mean = sum(values) / len(values)
        if mean == 0.0:
            return 0.0
        return (max(values) - min(values)) / mean

    def worst_category_spread(self) -> float:
        return max(self.category_spread(category) for category in self._category_groups())

    def worst_on_off_ratio(self) -> float:
        """Smallest on/off ratio across the sixteen configurations."""
        ratios = []
        for code, on in self.on_currents_a.items():
            off = self.off_currents_a[code]
            ratios.append(on / off if off > 0 else float("inf"))
        return min(ratios)

    def report(self) -> str:
        table = Table(
            ["configuration", "category", "Ion", "Ion per drain", "Ioff"],
            title=f"Terminal-configuration sweep ({self.spec.name})",
        )
        for code, configuration in ALL_TERMINAL_CONFIGURATIONS.items():
            table.add_row(
                [
                    code,
                    configuration.category(),
                    format_engineering(self.on_currents_a[code], "A"),
                    format_engineering(self.per_drain_current(code), "A"),
                    format_engineering(self.off_currents_a[code], "A"),
                ]
            )
        footer = (
            f"worst within-category per-drain current spread: {self.worst_category_spread():.3f}; "
            f"worst on/off ratio: {self.worst_on_off_ratio():.1e}"
        )
        return table.render() + "\n" + footer


def run_terminal_configuration_sweep(
    kind: str = "square", gate_material: str = "HfO2"
) -> ConfigurationSweepResult:
    """Run all sixteen drain/source/float cases on one device."""
    spec = device_spec(kind, gate_material)
    simulator = DeviceSimulator(spec)
    on: Dict[str, float] = {}
    off: Dict[str, float] = {}
    for code, configuration in ALL_TERMINAL_CONFIGURATIONS.items():
        on[code] = simulator.on_current(configuration)
        off[code] = simulator.off_current(configuration)
    return ConfigurationSweepResult(spec=spec, on_currents_a=on, off_currents_a=off)
