"""Fig. 9 — the six-MOSFET model of the square-shaped four-terminal switch."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.reporting import Table, format_engineering
from repro.circuits.sizing import switch_model_from_spec
from repro.devices.specs import device_spec
from repro.spice.elements.sources import VoltageSource
from repro.spice.engine import get_engine
from repro.spice.elements.switch4t import (
    FourTerminalSwitchModel,
    TYPE_A_PAIRS,
    TYPE_B_PAIRS,
    add_four_terminal_switch,
)
from repro.spice.netlist import Circuit, GROUND


@dataclass
class Fig9Result:
    """The switch model and a pairwise conduction check.

    Attributes
    ----------
    model:
        The six-MOSFET model built from the extracted parameters.
    pair_currents_on / pair_currents_off:
        Current driven through each terminal pair with the gate at the supply
        voltage and at 0 V, with the rest of the terminals floating.
    """

    model: FourTerminalSwitchModel
    pair_currents_on: Dict[Tuple[str, str], float]
    pair_currents_off: Dict[Tuple[str, str], float]
    bias_v: float

    def symmetry_spread(self) -> float:
        """Relative spread of the on-state pair currents (0 = perfectly symmetric)."""
        values = list(self.pair_currents_on.values())
        mean = sum(values) / len(values)
        if mean == 0.0:
            return 0.0
        return (max(values) - min(values)) / mean

    def worst_on_off_ratio(self) -> float:
        """Smallest on/off current ratio across the six terminal pairs."""
        ratios = []
        for pair, on in self.pair_currents_on.items():
            off = self.pair_currents_off[pair]
            ratios.append(on / off if off > 0 else float("inf"))
        return min(ratios)

    def report(self) -> str:
        table = Table(
            ["terminal pair", "type", "I(on) @ %.1f V" % self.bias_v, "I(off)"],
            title="Fig. 9 — six-MOSFET switch model, per-pair conduction",
        )
        for pair in list(TYPE_A_PAIRS) + list(TYPE_B_PAIRS):
            kind = "A" if pair in TYPE_A_PAIRS else "B"
            table.add_row(
                [
                    f"{pair[0]}-{pair[1]}",
                    kind,
                    format_engineering(self.pair_currents_on[pair], "A"),
                    format_engineering(self.pair_currents_off[pair], "A"),
                ]
            )
        header = (
            f"model: Kp = {self.model.type_a.kp_a_per_v2:.3e} A/V^2, "
            f"Vth = {self.model.type_a.vth_v:.3f} V, lambda = {self.model.type_a.lambda_per_v:.3f} 1/V\n"
            f"Type A: W/L = {self.model.type_a.width_m * 1e6:.2f}/{self.model.type_a.length_m * 1e6:.2f} um, "
            f"Type B: W/L = {self.model.type_b.width_m * 1e6:.2f}/{self.model.type_b.length_m * 1e6:.2f} um"
        )
        return header + "\n" + table.render()


def _pair_currents(
    model: FourTerminalSwitchModel, pair: Tuple[str, str], bias_v: float
) -> Tuple[float, float]:
    """On/off DC currents through one terminal pair (other terminals floating).

    One circuit serves both measurements: the gate source is re-levelled
    between the solves, so the compiled analysis structure is built once per
    pair instead of once per (pair, gate level).
    """
    circuit = Circuit(f"pair_{pair[0]}{pair[1]}")
    VoltageSource(circuit, "v_bias", "drive", GROUND, bias_v)
    gate = VoltageSource(circuit, "v_gate", "gate", GROUND, bias_v)
    nodes = {name: f"t_{name.lower()}" for name in ("T1", "T2", "T3", "T4")}
    nodes[pair[0]] = "drive"
    nodes[pair[1]] = GROUND
    add_four_terminal_switch(circuit, "dut", nodes, "gate", model, add_terminal_capacitors=False)
    engine = get_engine(circuit)
    on = abs(engine.solve_dc().source_current("v_bias"))
    gate.set_level(0.0)
    off = abs(engine.solve_dc().source_current("v_bias"))
    return on, off


def run_fig9(
    gate_material: str = "HfO2",
    supply_v: float = 1.2,
    model: FourTerminalSwitchModel = None,
) -> Fig9Result:
    """Build the switch model and measure every terminal pair's conduction."""
    if model is None:
        model = switch_model_from_spec(device_spec("square", gate_material))
    pairs = list(TYPE_A_PAIRS) + list(TYPE_B_PAIRS)
    on = {}
    off = {}
    for pair in pairs:
        on[pair], off[pair] = _pair_currents(model, pair, bias_v=supply_v)
    return Fig9Result(model=model, pair_currents_on=on, pair_currents_off=off, bias_v=supply_v)
