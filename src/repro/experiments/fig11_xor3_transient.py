"""Fig. 11 — transient analysis of the XOR3 lattice circuit.

The circuit is the paper's: the 3x3 XOR3 lattice as the pull-down network,
a 500 kOhm pull-up to a 1.2 V supply, a 10 fF output capacitor and 1 fF
terminal capacitors.  The inputs step through all eight combinations; the
output is the *inverse* of XOR3.  The result reports the quantities the
paper quotes: the zero-state output voltage, the rise time and the fall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import Table, format_engineering
from repro.analysis.waveform_metrics import LogicLevels, edge_times, steady_state_levels
from repro.circuits.lattice_netlist import LatticeCircuit, build_lattice_circuit
from repro.circuits.sizing import default_switch_model
from repro.circuits.testbench import InputSequence
from repro.core.evaluation import evaluate_lattice
from repro.core.lattice import Lattice
from repro.core.library import xor3_lattice_3x3
from repro.spice.elements.switch4t import FourTerminalSwitchModel
from repro.spice.transient import TransientResult

#: Values reported in Section V for comparison in reports.
PAPER_ZERO_STATE_V = 0.22
PAPER_RISE_TIME_S = 11.3e-9
PAPER_FALL_TIME_S = 4.7e-9


@dataclass
class Fig11Result:
    """Transient waveforms and the paper's figures of merit.

    Attributes
    ----------
    bench:
        The lattice circuit that was simulated.
    sequence:
        The input stimulus.
    transient:
        Raw transient result.
    levels:
        Low/high output levels observed.
    rise_time_s / fall_time_s:
        First 10-90 % rise and 90-10 % fall durations of the output.
    samples:
        Per-step settled output voltage, expected logic level and pass/fail.
    """

    bench: LatticeCircuit
    sequence: InputSequence
    transient: TransientResult
    levels: LogicLevels
    rise_time_s: float
    fall_time_s: float
    samples: List[Tuple[Dict[str, bool], float, bool, bool]]

    @property
    def zero_state_output_v(self) -> float:
        """The settled logic-low output voltage (paper: ~0.22 V)."""
        return self.levels.low_v

    @property
    def functionally_correct(self) -> bool:
        """True when every settled sample matches the expected logic level."""
        return all(ok for _, _, _, ok in self.samples)

    def report(self) -> str:
        table = Table(
            ["quantity", "this model", "paper"],
            title="Fig. 11 — XOR3 lattice transient (inverse of XOR3 at the output)",
        )
        table.add_row(["zero-state output", f"{self.zero_state_output_v:.3f} V", f"{PAPER_ZERO_STATE_V:.2f} V"])
        table.add_row(["one-state output", f"{self.levels.high_v:.3f} V", "~1.2 V"])
        table.add_row(["rise time (10-90 %)", format_engineering(self.rise_time_s, "s"), "11.3 ns"])
        table.add_row(["fall time (90-10 %)", format_engineering(self.fall_time_s, "s"), "4.7 ns"])
        table.add_row(["functionally correct", "yes" if self.functionally_correct else "NO", "yes"])

        detail = Table(["a", "b", "c", "output [V]", "expected level", "ok"], title="Settled output per input vector")
        for assignment, voltage, expect_high, ok in self.samples:
            detail.add_row(
                [
                    int(assignment["a"]),
                    int(assignment["b"]),
                    int(assignment["c"]),
                    f"{voltage:.3f}",
                    "high" if expect_high else "low",
                    "yes" if ok else "NO",
                ]
            )
        return table.render() + "\n\n" + detail.render()


def build_fig11_bench(
    lattice: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    supply_v: float = 1.2,
    pullup_ohm: float = 500e3,
    step_duration_s: float = 100e-9,
    gray_order: bool = False,
) -> LatticeCircuit:
    """The Fig. 11 bench as a circuit factory (spec-addressable).

    Module-level so a :class:`repro.api.CircuitSpec` can name it — this is
    the factory behind :func:`run_fig11`'s specs and the natural entry
    point for custom Fig. 11 studies through :class:`repro.api.Session`.
    """
    if lattice is None:
        lattice = xor3_lattice_3x3()
    if model is None:
        model = default_switch_model()
    variables = lattice.variables()
    sequence = InputSequence.exhaustive(
        variables, step_duration_s=step_duration_s, high_level_v=supply_v, gray=gray_order
    )
    return build_lattice_circuit(
        lattice,
        model=model,
        input_sequence=sequence,
        supply_v=supply_v,
        pullup_ohm=pullup_ohm,
    )


def run_fig11(
    lattice: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    supply_v: float = 1.2,
    pullup_ohm: float = 500e3,
    step_duration_s: float = 100e-9,
    timestep_s: float = 1e-9,
    gray_order: bool = False,
    adaptive: bool = False,
    solver=None,
    **transient_kwargs,
) -> Fig11Result:
    """Run the Fig. 11 transient experiment.

    Builds a :class:`repro.api.Transient` spec over
    :func:`build_fig11_bench` and runs it through the shared
    :func:`repro.api.default_session`, so repeated runs with identical
    parameters replay from the content-hash cache instead of re-solving.

    Parameters
    ----------
    lattice:
        The pull-down lattice (defaults to the 3x3 XOR3 realization).
    model:
        Switch model (defaults to the cached square/HfO2 extraction).
    supply_v / pullup_ohm:
        Circuit constants (paper defaults: 1.2 V, 500 kOhm).
    step_duration_s / timestep_s:
        Stimulus step length and transient timestep (the initial step when
        adaptive).
    gray_order:
        Drive the inputs in Gray-code order instead of counting order.
    adaptive / solver / transient_kwargs:
        Transient-spec knobs: the LTE step controller and the linear-solver
        backend (see :class:`repro.api.Transient`).  A ``solver`` given as
        a :class:`~repro.spice.solvers.LinearSolver` *instance* (not
        content-hashable, hence not spec-able) bypasses the session and
        runs the bench directly, preserving the PR 3 calling convention.
    """
    from repro.api import CircuitSpec, Transient, default_session

    session = default_session()
    circuit_spec = CircuitSpec(
        build_fig11_bench,
        params={
            "lattice": lattice,
            "model": model,
            "supply_v": supply_v,
            "pullup_ohm": pullup_ohm,
            "step_duration_s": step_duration_s,
            "gray_order": gray_order,
        },
    )
    bench = session.build_circuit(circuit_spec)
    if solver is None or isinstance(solver, str):
        spec = Transient(
            circuit=circuit_spec,
            timestep_s=timestep_s,
            adaptive=adaptive,
            solver=solver,
            **transient_kwargs,
        )
        result = session.run(spec)
        transient = TransientResult(
            circuit=bench.circuit,
            time_s=result.arrays["time_s"],
            solutions=result.arrays["solutions"],
            converged=result.converged,
            convergence_info=result.convergence_info,
        )
    else:
        # Solver instances cannot be content-hashed into a spec; run the
        # engine directly (uncached) exactly as before PR 4.
        transient = bench.run_transient(
            timestep_s=timestep_s, adaptive=adaptive, solver=solver, **transient_kwargs
        )
    lattice = bench.lattice
    sequence = bench.input_sequence

    vout = transient.voltage(bench.output_node)
    levels = steady_state_levels(transient.time_s, vout)
    rises, falls = edge_times(transient.time_s, vout, levels)

    threshold = supply_v / 2.0
    settled = transient.sample_voltages(bench.output_node, sequence.sample_times())
    samples: List[Tuple[Dict[str, bool], float, bool, bool]] = []
    for step, voltage in enumerate(settled):
        assignment = sequence.assignment_at_step(step)
        expect_high = not evaluate_lattice(lattice, assignment)
        ok = (voltage > threshold) == expect_high
        samples.append((assignment, float(voltage), expect_high, ok))

    return Fig11Result(
        bench=bench,
        sequence=sequence,
        transient=transient,
        levels=levels,
        rise_time_s=rises[0] if rises else float("nan"),
        fall_time_s=falls[0] if falls else float("nan"),
        samples=samples,
    )
