"""A small SPICE-style circuit simulator built around one analysis engine.

Section V of the paper runs SPICE simulations of switching-lattice circuits
built from the six-MOSFET switch model of Fig. 9.  This package provides the
simulator those experiments need, organised around a single compiled
analysis engine:

* :mod:`repro.spice.netlist` — circuits, nodes, element registration and the
  legacy per-element ``stamp()`` assembly (kept as the compatibility path
  and testing oracle);
* :mod:`repro.spice.elements` — resistor, capacitor, independent sources,
  the level-1 MOSFET, and the four-terminal switch subcircuit of Fig. 9;
* :mod:`repro.spice.engine` — the core: :class:`~repro.spice.engine.CompiledCircuit`
  walks a circuit once and emits per-element-class index arrays, so every
  Newton iteration assembles the Jacobian/RHS with vectorized ``np.add.at``
  scatter; :class:`~repro.spice.engine.AnalysisEngine` owns the one Newton
  loop in the package plus its gmin-stepping and source-stepping fallbacks;
* :mod:`repro.spice.solvers` — the *solver seam*: pluggable
  :class:`~repro.spice.solvers.LinearSolver` backends behind every Newton
  iteration's linear solve — dense LAPACK (default), sparse SuperLU reusing
  the compiled sparsity pattern (large lattices; optional scipy), and a
  batched dense backend solving stacked ``(trials, n, n)`` systems in one
  call.  Every analysis accepts ``solver="auto" | "dense" | "sparse" |
  "batched" | "sparse-batched"``
  (or an instance);
* :mod:`repro.spice.waveforms` — DC, pulse and piecewise-linear stimuli
  (with breakpoint reporting for the adaptive transient controller);
* :mod:`repro.spice.montecarlo` — Monte-Carlo variability analysis on the
  compiled engine: seeded distributions perturb the compiled parameter
  arrays in place (no netlist re-walk per trial), trials shard across a
  process pool with deterministic per-trial substreams, and same-pattern
  trials solve as one stacked batch through the batched backend — DC
  operating points
  (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_dc`) and
  lockstep fixed-step transients
  (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_transient`),
  both bit-identical to the per-trial path.

The preferred way to *run* analyses is the declarative layer in
:mod:`repro.api` (specs + ``Session`` with content-hash caching and
executor fan-out); the module-level frontends below remain as thin
delegating wrappers and now emit ``DeprecationWarning``:

* :func:`~repro.spice.dcop.dc_operating_point` — Newton-Raphson DC solve
  with automatic convergence fallbacks, returning an
  :class:`~repro.spice.dcop.OperatingPoint`;
* :func:`~repro.spice.dcsweep.dc_sweep` — DC sweeps with warm-start
  continuation over one compiled structure, returning a
  :class:`~repro.spice.dcsweep.DCSweepResult`;
* :func:`~repro.spice.engine.sweep_many` — a *family* of sweeps (e.g. one
  per gate voltage of a drive study) batched through one compiled circuit
  with per-point continuation;
* :func:`~repro.spice.transient.transient_analysis` — backward-Euler /
  trapezoidal transient with per-step Newton iteration, returning a
  :class:`~repro.spice.transient.TransientResult`; ``adaptive=True``
  switches the fixed-step march to an LTE-controlled step-size controller
  (accept/reject with min/max clamps, stimulus breakpoints never skipped),
  with per-run step-acceptance statistics on the result's
  :class:`~repro.spice.transient.TransientConvergenceInfo`.

Typical use::

    from repro.spice import Circuit, Resistor, VoltageSource, dc_operating_point

    circuit = Circuit()
    VoltageSource(circuit, "vin", "in", "0", 1.2)
    Resistor(circuit, "r1", "in", "out", 1e3)
    Resistor(circuit, "r2", "out", "0", 1e3)
    print(dc_operating_point(circuit).voltage("out"))

Repeated analyses on one circuit (sweeps, parameter studies, Monte Carlo)
share the compiled structure automatically — :func:`~repro.spice.engine.get_engine`
caches the engine on the circuit and recompiles only when the topology
changes.  Custom elements only need ``name`` and ``stamp(system, state)``;
the engine routes them through the compatibility path unchanged.
"""

from repro.spice.netlist import Circuit, GROUND, MNASystem, AnalysisState
from repro.spice.waveforms import DC, Pulse, PiecewiseLinear, Waveform
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource, CurrentSource
from repro.spice.elements.mosfet import MOSFET
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch
from repro.spice.engine import (
    AnalysisEngine,
    CompiledCircuit,
    PERTURBABLE_PARAMETERS,
    SparsityPattern,
    get_engine,
    sweep_many,
)
from repro.spice.solvers import (
    AutoSolver,
    BatchedDenseSolver,
    BatchedSparseSolver,
    DenseSolver,
    LinearSolver,
    SparseSolver,
    available_backends,
    get_solver,
)
from repro.spice.dcop import (
    BatchedOperatingPoints,
    ConvergenceInfo,
    OperatingPoint,
    dc_operating_point,
)
from repro.spice.dcsweep import DCSweepResult, dc_sweep
from repro.spice.transient import (
    BatchedTransientResult,
    TransientConvergenceInfo,
    TransientResult,
    transient_analysis,
)
from repro.spice.montecarlo import (
    Distribution,
    Gaussian,
    Lognormal,
    MonteCarloEngine,
    MonteCarloResult,
    Uniform,
    parallel_sweep_many,
)

__all__ = [
    "Circuit",
    "GROUND",
    "MNASystem",
    "AnalysisState",
    "DC",
    "Pulse",
    "PiecewiseLinear",
    "Waveform",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "MOSFET",
    "FourTerminalSwitchModel",
    "add_four_terminal_switch",
    "AnalysisEngine",
    "CompiledCircuit",
    "PERTURBABLE_PARAMETERS",
    "get_engine",
    "sweep_many",
    "SparsityPattern",
    "LinearSolver",
    "DenseSolver",
    "SparseSolver",
    "BatchedDenseSolver",
    "BatchedSparseSolver",
    "AutoSolver",
    "get_solver",
    "available_backends",
    "Distribution",
    "Gaussian",
    "Uniform",
    "Lognormal",
    "MonteCarloEngine",
    "MonteCarloResult",
    "parallel_sweep_many",
    "ConvergenceInfo",
    "OperatingPoint",
    "BatchedOperatingPoints",
    "dc_operating_point",
    "DCSweepResult",
    "dc_sweep",
    "TransientResult",
    "TransientConvergenceInfo",
    "BatchedTransientResult",
    "transient_analysis",
]
