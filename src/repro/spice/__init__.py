"""A small SPICE-style circuit simulator (modified nodal analysis).

Section V of the paper runs SPICE simulations of switching-lattice circuits
built from the six-MOSFET switch model of Fig. 9.  This package provides the
simulator those experiments need:

* :mod:`repro.spice.netlist` — circuits, nodes, element registration;
* :mod:`repro.spice.elements` — resistor, capacitor, independent sources,
  the level-1 MOSFET, and the four-terminal switch subcircuit of Fig. 9;
* :mod:`repro.spice.dcop` — Newton-Raphson DC operating point;
* :mod:`repro.spice.dcsweep` — DC sweeps with solution continuation;
* :mod:`repro.spice.transient` — backward-Euler / trapezoidal transient
  analysis with per-step Newton iteration;
* :mod:`repro.spice.waveforms` — DC, pulse and piecewise-linear stimuli.

The engine is deliberately small (dense MNA matrices, level-1 devices); the
circuits of the paper — a lattice pull-down network, a pull-up resistor and
femto-farad load capacitors — are well inside its comfort zone.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveforms import DC, Pulse, PiecewiseLinear, Waveform
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource, CurrentSource
from repro.spice.elements.mosfet import MOSFET
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch
from repro.spice.dcop import OperatingPoint, dc_operating_point
from repro.spice.dcsweep import DCSweepResult, dc_sweep
from repro.spice.transient import TransientResult, transient_analysis

__all__ = [
    "Circuit",
    "GROUND",
    "DC",
    "Pulse",
    "PiecewiseLinear",
    "Waveform",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "MOSFET",
    "FourTerminalSwitchModel",
    "add_four_terminal_switch",
    "OperatingPoint",
    "dc_operating_point",
    "DCSweepResult",
    "dc_sweep",
    "TransientResult",
    "transient_analysis",
]
