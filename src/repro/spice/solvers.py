"""Pluggable linear-solver backends for the analysis engine.

Every Newton iteration of every analysis ends in one linear solve of the
assembled MNA system.  :class:`~repro.spice.engine.AnalysisEngine` routes
that solve through a :class:`LinearSolver` instance — the *solver seam* —
so the backend can be swapped without touching the assembly or the
iteration logic:

* :class:`DenseSolver` — ``np.linalg.solve`` on the dense assembled matrix.
  The default, and the reference the other backends are tested against.
* :class:`SparseSolver` — SciPy sparse LU (SuperLU) on a CSC matrix whose
  *structure* is precomputed once from the compiled circuit's index arrays
  (:meth:`LinearSolver.bind`), so every Newton iteration and sweep point
  only gathers the current numeric values into the fixed sparsity pattern.
  Pays off on large lattices, where the MNA matrix is overwhelmingly empty.
  Requires the optional ``scipy`` dependency — install it directly or
  through this package's ``[sparse]`` extra.
* :class:`BatchedDenseSolver` — stacks ``(trials, n, n)`` systems and
  solves them in a single vectorized LAPACK call.  The Monte-Carlo engine
  runs same-pattern trials through this backend
  (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_dc`); its
  per-system results are bit-identical to :class:`DenseSolver` on the same
  matrices.

Select a backend by name through any analysis frontend::

    dc_operating_point(circuit, solver="sparse")
    transient_analysis(circuit, 1e-6, 1e-9, solver="dense")

or hand a configured instance to ``get_solver`` / the engine directly.
Backends signal a numerically singular system uniformly by raising
``np.linalg.LinAlgError``, so the engine's gmin-bump retry works the same
whichever backend is active.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "LinearSolver",
    "DenseSolver",
    "SparseSolver",
    "BatchedDenseSolver",
    "get_solver",
    "available_backends",
    "scipy_available",
]


def _import_scipy_sparse():
    """Import hook for the optional SciPy dependency (monkeypatch point).

    Returns ``(scipy.sparse, scipy.sparse.linalg)`` or raises ImportError
    with an actionable message.  Kept as a module-level function so tests
    (and environments without SciPy) exercise the failure path cleanly.
    """
    try:
        import scipy.sparse
        import scipy.sparse.linalg
    except ImportError as error:  # pragma: no cover - depends on environment
        raise ImportError(
            "the sparse solver backend needs scipy; install the optional "
            "extra (pip install scipy, or this package's [sparse] extra) or use solver='dense'"
        ) from error
    return scipy.sparse, scipy.sparse.linalg


def scipy_available() -> bool:
    """Whether the optional SciPy dependency (sparse backend) is importable."""
    try:
        _import_scipy_sparse()
    except ImportError:
        return False
    return True


class LinearSolver:
    """Protocol of the engine's linear-solve seam.

    A solver receives the assembled (ghost-trimmed) Jacobian and right-hand
    side of one Newton iteration and returns the update's solution vector.
    Implementations must raise ``np.linalg.LinAlgError`` on a singular
    system so the engine's fallbacks (gmin bumping) stay backend-agnostic.

    :meth:`bind` is an optional pre-solve hook: the engine calls it with the
    active :class:`~repro.spice.engine.CompiledCircuit` before a Newton run
    so structure-caching backends (sparse) can precompute their sparsity
    pattern once per compiled topology.
    """

    #: Registry name of the backend (``solver="<name>"`` in the frontends).
    name = "base"

    def bind(self, compiled) -> None:
        """Precompute per-topology structure (default: nothing to do)."""

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one ``(n, n)`` system; raises ``LinAlgError`` if singular."""
        raise NotImplementedError

    def solve_batched(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve stacked ``(T, n, n)`` systems against ``(T, n)`` vectors.

        The base implementation loops over :meth:`solve`; backends with a
        genuinely batched kernel (dense LAPACK) override it.
        """
        return np.stack([self.solve(m, r) for m, r in zip(matrices, rhs)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DenseSolver(LinearSolver):
    """The default backend: one dense LAPACK solve per Newton iteration.

    Its :meth:`solve_batched` deliberately loops — this is the *per-trial
    dense path* the batched backend is benchmarked against.
    """

    name = "dense"

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(matrix, rhs)


class BatchedDenseSolver(DenseSolver):
    """Dense backend whose batched solve is a single vectorized LAPACK call.

    ``np.linalg.solve`` on a ``(T, n, n)`` stack dispatches one gufunc call
    that factorizes every system without returning to Python, which is what
    makes batched Monte-Carlo trials cheap.  Each system in the stack is
    solved by the same LAPACK routine as a lone dense solve, so results are
    bit-identical to :class:`DenseSolver` system for system.
    """

    name = "batched"

    def solve_batched(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(matrices, rhs[..., np.newaxis])[..., 0]


class SparseSolver(LinearSolver):
    """SciPy SuperLU backend reusing the compiled circuit's sparsity pattern.

    :meth:`bind` walks the compiled index arrays once per topology and
    emits the CSC structure (column pointers + row indices) of every entry
    any stamp can touch: the matrix diagonal, the static resistor and
    voltage-source-branch entries, the capacitor companion entries and all
    MOSFET conductance positions (both channel orientations).  Each solve
    then only gathers the dense assembly's values at those positions —
    no per-iteration structure analysis.

    Circuits with custom (compatibility-path) elements have no precomputed
    pattern; the solver falls back to converting the dense matrix per call,
    which stays correct, just without the structural shortcut.
    """

    name = "sparse"

    def __init__(self):
        # Fail at construction, not mid-Newton, when scipy is missing.
        _import_scipy_sparse()
        self._bound_key: Optional[Tuple[int, int]] = None
        self._size: Optional[int] = None
        self._rows: Optional[np.ndarray] = None  # COO of the pattern
        self._cols: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None  # CSC row indices
        self._indptr: Optional[np.ndarray] = None  # CSC column pointers

    def bind(self, compiled) -> None:
        key = (id(compiled), compiled.revision)
        if key == self._bound_key:
            return
        self._bound_key = key
        self._size = None
        if compiled.custom_elements:
            return  # unknown stamps: no safe static pattern
        size = compiled.size
        rows = [np.arange(size), compiled._static_rows, compiled._static_cols]
        cols = [np.arange(size), compiled._static_cols, compiled._static_rows]
        if compiled.num_capacitors:
            a, b = compiled.cap_a, compiled.cap_b
            rows.append(np.concatenate((a, b, a, b)))
            cols.append(np.concatenate((a, b, b, a)))
        if compiled.num_mosfets:
            d, g, s = compiled.mos_d, compiled.mos_g, compiled.mos_s
            # Either channel orientation stamps rows {d, s} against columns
            # {d, s, g}; the union covers both.
            rows.append(np.concatenate((d, s, d, s, d, s)))
            cols.append(np.concatenate((d, s, s, d, g, g)))
        all_rows = np.concatenate(rows)
        all_cols = np.concatenate(cols)
        # Ghost (ground) entries are trimmed before the solve.
        keep = (all_rows < size) & (all_cols < size)
        all_rows, all_cols = all_rows[keep], all_cols[keep]
        # Canonical CSC structure: sort by column, then row, drop duplicates.
        order = np.lexsort((all_rows, all_cols))
        all_rows, all_cols = all_rows[order], all_cols[order]
        unique = np.ones(all_rows.size, dtype=bool)
        unique[1:] = (all_rows[1:] != all_rows[:-1]) | (all_cols[1:] != all_cols[:-1])
        self._rows = all_rows[unique]
        self._cols = all_cols[unique]
        self._indices = self._rows
        self._indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(np.bincount(self._cols, minlength=size), out=self._indptr[1:])
        self._size = size

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        sparse, sparse_linalg = _import_scipy_sparse()
        if self._size == matrix.shape[0]:
            data = matrix[self._rows, self._cols]
            system = sparse.csc_matrix(
                (data, self._indices, self._indptr), shape=matrix.shape
            )
        else:
            system = sparse.csc_matrix(matrix)
        try:
            return sparse_linalg.splu(system).solve(rhs)
        except RuntimeError as error:
            # SuperLU reports an exactly singular factor as RuntimeError;
            # normalize to the dense backend's exception so the engine's
            # gmin-bump retry is backend-agnostic.
            raise np.linalg.LinAlgError(str(error)) from error


_BACKENDS: Dict[str, Type[LinearSolver]] = {
    DenseSolver.name: DenseSolver,
    SparseSolver.name: SparseSolver,
    BatchedDenseSolver.name: BatchedDenseSolver,
}


def available_backends() -> Tuple[str, ...]:
    """Names of the backends constructible in this environment."""
    names = [DenseSolver.name, BatchedDenseSolver.name]
    if scipy_available():
        names.insert(1, SparseSolver.name)
    return tuple(names)


def get_solver(spec: Union[None, str, LinearSolver] = None) -> LinearSolver:
    """Resolve a solver spec: ``None`` (dense default), a name, or an instance."""
    if spec is None:
        return DenseSolver()
    if isinstance(spec, LinearSolver):
        return spec
    if isinstance(spec, str):
        backend = _BACKENDS.get(spec.lower())
        if backend is None:
            raise ValueError(
                f"unknown solver backend {spec!r}; expected one of {sorted(_BACKENDS)}"
            )
        return backend()
    raise TypeError(
        f"solver must be None, a backend name or a LinearSolver instance, got {spec!r}"
    )
