"""Pluggable linear-solver backends for the analysis engine.

Every Newton iteration of every analysis ends in one linear solve of the
assembled MNA system.  :class:`~repro.spice.engine.AnalysisEngine` routes
that solve through a :class:`LinearSolver` instance — the *solver seam* —
so the backend can be swapped without touching the assembly or the
iteration logic:

* :class:`DenseSolver` — ``np.linalg.solve`` on the dense assembled matrix.
  The default, and the reference the other backends are tested against.
* :class:`SparseSolver` — SciPy sparse LU (SuperLU) on a CSC matrix whose
  *structure* is precomputed once from the compiled circuit's
  :class:`~repro.spice.engine.SparsityPattern`.  A pattern-assembly backend
  (:attr:`LinearSolver.wants_pattern_assembly`): the engine hands it the
  ``(nnz,)`` CSC data array of ``CompiledCircuit.assemble_sparse`` directly,
  so no dense matrix is ever formed.  Pays off on large lattices, where the
  MNA matrix is overwhelmingly empty.  Requires the optional ``scipy``
  dependency — install it directly or through this package's ``[sparse]``
  extra.
* :class:`BatchedDenseSolver` — stacks ``(trials, n, n)`` systems and
  solves them in a single vectorized LAPACK call.  The Monte-Carlo engine
  runs same-pattern trials through this backend
  (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_dc`); its
  per-system results are bit-identical to :class:`DenseSolver` on the same
  matrices.
* :class:`BatchedSparseSolver` — the sparse twin of the batched backend:
  the CSC *structure* (canonical ordering, position maps, ghost trimming)
  is analyzed once per topology and shared by every trial, then each trial
  of the ``(trials, nnz)`` data stack is numerically factorized and solved
  through SuperLU over that shared structure.  Memory scales as
  ``trials * nnz`` instead of the dense stack's ``trials * n^2``.
* :class:`AutoSolver` — a *policy* backend (``solver="auto"``, the default
  spec value): picks dense vs sparse — and their batched variants — from
  the system size, the trial count and the measured dense/sparse crossover
  recorded in ``BENCH_solvers.json``.  Degrades gracefully to dense (with
  an actionable warning) when SciPy is unavailable.

Select a backend by name through any analysis frontend::

    dc_operating_point(circuit, solver="sparse")
    transient_analysis(circuit, 1e-6, 1e-9, solver="auto")

or hand a configured instance to ``get_solver`` / the engine directly.
Backends signal a numerically singular system uniformly by raising
``np.linalg.LinAlgError``, so the engine's gmin-bump retry works the same
whichever backend is active.
"""

from __future__ import annotations

import json
import os
import warnings
from functools import lru_cache
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "LinearSolver",
    "DenseSolver",
    "SparseSolver",
    "BatchedDenseSolver",
    "BatchedSparseSolver",
    "AutoSolver",
    "DEFAULT_DENSE_SPARSE_CROSSOVER",
    "get_solver",
    "available_backends",
    "scipy_available",
    "recorded_crossovers",
]

#: Fallback system size above which :class:`AutoSolver` prefers the sparse
#: backends when no measured crossover is recorded.  Calibrated on the
#: identity-lattice scalability benches (``benchmarks/bench_solvers.py``),
#: where sparse SuperLU first beats the dense LAPACK solve near n ≈ 300.
DEFAULT_DENSE_SPARSE_CROSSOVER = 300


def _import_scipy_sparse():
    """Import hook for the optional SciPy dependency (monkeypatch point).

    Returns ``(scipy.sparse, scipy.sparse.linalg)`` or raises ImportError
    with an actionable message.  Kept as a module-level function so tests
    (and environments without SciPy) exercise the failure path cleanly.
    """
    try:
        import scipy.sparse
        import scipy.sparse.linalg
    except ImportError as error:  # pragma: no cover - depends on environment
        raise ImportError(
            "the sparse solver backend needs scipy; install the optional "
            "extra (pip install scipy, or this package's [sparse] extra) or use solver='dense'"
        ) from error
    return scipy.sparse, scipy.sparse.linalg


def scipy_available() -> bool:
    """Whether the optional SciPy dependency (sparse backend) is importable."""
    try:
        _import_scipy_sparse()
    except ImportError:
        return False
    return True


class LinearSolver:
    """Protocol of the engine's linear-solve seam.

    A solver receives the assembled (ghost-trimmed) Jacobian and right-hand
    side of one Newton iteration and returns the update's solution vector.
    Implementations must raise ``np.linalg.LinAlgError`` on a singular
    system so the engine's fallbacks (gmin bumping) stay backend-agnostic.

    :meth:`bind` is an optional pre-solve hook: the engine calls it with the
    active :class:`~repro.spice.engine.CompiledCircuit` before a Newton run
    so structure-caching backends (sparse) can precompute their sparsity
    pattern once per compiled topology.

    Backends that set :attr:`wants_pattern_assembly` receive CSC data
    arrays assembled straight into the compiled circuit's
    :class:`~repro.spice.engine.SparsityPattern`
    (:meth:`solve_pattern`/:meth:`solve_pattern_batched`) instead of dense
    matrices — the engine never materializes ``(n, n)`` for them.

    :meth:`select` resolves *policy* backends: the engine calls it with the
    compiled circuit (and the trial count for batched runs) right before a
    Newton run, and the returned concrete backend does the solving.  Plain
    backends return themselves.
    """

    #: Registry name of the backend (``solver="<name>"`` in the frontends).
    name = "base"

    #: When True the engine assembles CSC pattern data
    #: (``CompiledCircuit.assemble_sparse*``) and calls
    #: :meth:`solve_pattern`/:meth:`solve_pattern_batched` instead of the
    #: dense :meth:`solve`/:meth:`solve_batched`.
    wants_pattern_assembly = False

    def select(self, compiled, trials: Optional[int] = None) -> "LinearSolver":
        """Resolve to the concrete backend for this run (default: self)."""
        return self

    def bind(self, compiled) -> None:
        """Precompute per-topology structure (default: nothing to do)."""

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one ``(n, n)`` system; raises ``LinAlgError`` if singular."""
        raise NotImplementedError

    def solve_batched(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve stacked ``(T, n, n)`` systems against ``(T, n)`` vectors.

        The base implementation loops over :meth:`solve`; backends with a
        genuinely batched kernel (dense LAPACK) override it.
        """
        return np.stack([self.solve(m, r) for m, r in zip(matrices, rhs)])

    def solve_pattern(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one system given as ``(nnz,)`` data of the bound pattern."""
        raise NotImplementedError(
            f"the {self.name!r} backend does not take pattern-assembled systems"
        )

    def solve_pattern_batched(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve a ``(T, nnz)`` pattern-data stack against ``(T, n)`` vectors."""
        return np.stack([self.solve_pattern(d, r) for d, r in zip(data, rhs)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DenseSolver(LinearSolver):
    """The default backend: one dense LAPACK solve per Newton iteration.

    Its :meth:`solve_batched` deliberately loops — this is the *per-trial
    dense path* the batched backend is benchmarked against.
    """

    name = "dense"

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(matrix, rhs)


class BatchedDenseSolver(DenseSolver):
    """Dense backend whose batched solve is a single vectorized LAPACK call.

    ``np.linalg.solve`` on a ``(T, n, n)`` stack dispatches one gufunc call
    that factorizes every system without returning to Python, which is what
    makes batched Monte-Carlo trials cheap.  Each system in the stack is
    solved by the same LAPACK routine as a lone dense solve, so results are
    bit-identical to :class:`DenseSolver` system for system.
    """

    name = "batched"

    def solve_batched(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(matrices, rhs[..., np.newaxis])[..., 0]


class SparseSolver(LinearSolver):
    """SciPy SuperLU backend over the compiled circuit's sparsity pattern.

    :meth:`bind` takes the compiled circuit's shared
    :class:`~repro.spice.engine.SparsityPattern` (built once per topology);
    the engine then assembles straight into that pattern's CSC data array
    (:meth:`solve_pattern`) — no dense matrix, no per-iteration structure
    analysis.

    Circuits with custom (compatibility-path) elements have no precomputed
    pattern and still assemble densely; :meth:`solve` then probes the CSC
    structure from the first matrix it sees and reuses it for every later
    solve (a cheap gather plus a nonzero-count guard), only re-probing when
    a value appears outside the cached structure.
    """

    name = "sparse"
    wants_pattern_assembly = True

    def __init__(self):
        # Fail at construction, not mid-Newton, when scipy is missing.
        _import_scipy_sparse()
        self._bound_key: Optional[Tuple[int, int]] = None
        self._pattern = None  # the compiled circuit's SparsityPattern
        # Probed CSC structure of the dense fallback path (custom-element
        # circuits): (rows, cols, indices, indptr, n).
        self._probed: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]] = None

    def bind(self, compiled) -> None:
        key = (id(compiled), compiled.revision)
        if key == self._bound_key:
            return
        self._bound_key = key
        self._pattern = compiled.sparsity_pattern()  # None for custom elements
        self._probed = None

    def _csc_from_dense(self, matrix: np.ndarray):
        """CSC form of a dense matrix without per-call structure analysis.

        Preference order: gather through the bound pattern; gather through
        the previously probed structure (guarded by a nonzero count — any
        value outside the cached structure forces a re-probe, so nothing is
        ever silently dropped); full conversion as the last resort, caching
        the structure it finds.
        """
        sparse, _ = _import_scipy_sparse()
        n = matrix.shape[0]
        pattern = self._pattern
        if pattern is not None and pattern.size == n:
            data = matrix[pattern.rows, pattern.cols]
            return sparse.csc_matrix(
                (data, pattern.indices, pattern.indptr), shape=matrix.shape
            )
        probed = self._probed
        if probed is not None and probed[4] == n:
            rows, cols, indices, indptr, _ = probed
            data = matrix[rows, cols]
            if np.count_nonzero(data) == np.count_nonzero(matrix):
                return sparse.csc_matrix((data, indices, indptr), shape=matrix.shape)
        system = sparse.csc_matrix(matrix)
        indices = system.indices.astype(np.int32, copy=True)
        indptr = system.indptr.astype(np.int32, copy=True)
        cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        self._probed = (indices.astype(np.int64), cols, indices, indptr, n)
        return system

    def _splu_solve(self, system, rhs: np.ndarray) -> np.ndarray:
        _, sparse_linalg = _import_scipy_sparse()
        try:
            return sparse_linalg.splu(system).solve(rhs)
        except RuntimeError as error:
            # SuperLU reports an exactly singular factor as RuntimeError;
            # normalize to the dense backend's exception so the engine's
            # gmin-bump retry is backend-agnostic.
            raise np.linalg.LinAlgError(str(error)) from error

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return self._splu_solve(self._csc_from_dense(matrix), rhs)

    def solve_pattern(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        sparse, _ = _import_scipy_sparse()
        pattern = self._pattern
        if pattern is None:
            raise RuntimeError(
                "solve_pattern needs a bound sparsity pattern; bind() the "
                "compiled circuit first"
            )
        system = sparse.csc_matrix(
            (data, pattern.indices, pattern.indptr), shape=(pattern.size, pattern.size)
        )
        return self._splu_solve(system, rhs)


class BatchedSparseSolver(SparseSolver):
    """Sparse backend for stacked trials over one shared CSC structure.

    The *symbolic* work — canonical CSC ordering, stamp-position maps,
    ghost trimming — happens once per topology in the shared
    :class:`~repro.spice.engine.SparsityPattern`; every trial of a
    ``(trials, nnz)`` data stack then reuses that structure and only pays
    the per-trial *numeric* factorization and triangular solves (SciPy's
    SuperLU binding exposes no cross-factorization symbolic reuse, so each
    trial runs a full ``splu`` over the shared index arrays).  A singular
    trial anywhere in the stack raises ``LinAlgError`` for the whole stack,
    exactly like the batched dense backend, so the engine's per-trial
    isolation and gmin/source-stepping ladders work unchanged.
    """

    name = "sparse-batched"

    def solve_pattern_batched(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        sparse, _ = _import_scipy_sparse()
        pattern = self._pattern
        if pattern is None:
            raise RuntimeError(
                "solve_pattern_batched needs a bound sparsity pattern; bind() "
                "the compiled circuit first"
            )
        shape = (pattern.size, pattern.size)
        out = np.empty_like(rhs)
        for trial in range(data.shape[0]):
            system = sparse.csc_matrix(
                (data[trial], pattern.indices, pattern.indptr), shape=shape
            )
            out[trial] = self._splu_solve(system, rhs[trial])
        return out


@lru_cache(maxsize=8)
def _load_bench_payload(path: str) -> Optional[Dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def recorded_crossovers() -> Dict[str, float]:
    """Measured solver crossovers from a recorded ``BENCH_solvers.json``.

    Looked up, in order, at ``$REPRO_BENCH_SOLVERS`` (an explicit file
    path), ``$BENCH_JSON_DIR/BENCH_solvers.json`` (the CI benchmark
    artifact directory) and ``./BENCH_solvers.json``; the first readable
    JSON object wins.  Returns the numeric ``*crossover_size`` entries
    found anywhere in the payload (top level or one level down), ``{}``
    when nothing is recorded.  File reads are memoized per path.
    """
    candidates = []
    explicit = os.environ.get("REPRO_BENCH_SOLVERS")
    if explicit:
        candidates.append(explicit)
    directory = os.environ.get("BENCH_JSON_DIR")
    if directory:
        candidates.append(os.path.join(directory, "BENCH_solvers.json"))
    candidates.append(os.path.join(os.getcwd(), "BENCH_solvers.json"))
    for path in candidates:
        payload = _load_bench_payload(path)
        if payload is None:
            continue
        found: Dict[str, float] = {}
        sections = [payload] + [v for v in payload.values() if isinstance(v, dict)]
        for section in sections:
            for key, value in section.items():
                if key.endswith("crossover_size") and isinstance(value, (int, float)):
                    found.setdefault(key, float(value))
        if found:
            return found
    return {}


class AutoSolver(LinearSolver):
    """Size/trial-aware backend selection behind the normal solver seam.

    ``solver="auto"`` — the default spec value — resolves to a concrete
    backend per Newton run through :meth:`select`:

    * systems below the dense/sparse crossover use :class:`DenseSolver`
      (serial) or :class:`BatchedDenseSolver` (stacked trials);
    * systems at or above it use :class:`SparseSolver` /
      :class:`BatchedSparseSolver`, assembling straight into the CSC
      pattern (``trials * nnz`` memory instead of ``trials * n^2``).

    The crossover comes from, in order: the constructor argument, the
    ``REPRO_SOLVER_CROSSOVER`` environment variable, the measured
    ``crossover_size``/``batched_crossover_size`` recorded in
    ``BENCH_solvers.json`` (see :func:`recorded_crossovers`), and finally
    :data:`DEFAULT_DENSE_SPARSE_CROSSOVER`.

    Circuits with custom (compatibility-path) elements have no static
    sparsity pattern and always select dense.  When SciPy is missing, a
    selection that would have gone sparse falls back to dense and warns
    once (RuntimeWarning) with the install hint — the run still completes.
    """

    name = "auto"

    def __init__(
        self,
        crossover: Optional[int] = None,
        batched_crossover: Optional[int] = None,
    ):
        env = os.environ.get("REPRO_SOLVER_CROSSOVER")
        recorded = {}
        if crossover is None or batched_crossover is None:
            recorded = recorded_crossovers()

        def resolve(value: Optional[int], *keys: str, fallback: int) -> int:
            if value is not None:
                return int(value)
            if env:
                try:
                    return int(env)
                except ValueError:
                    pass
            for key in keys:
                if key in recorded:
                    return int(recorded[key])
            return fallback

        #: Serial dense/sparse crossover (system size).
        self.crossover = resolve(
            crossover, "crossover_size", fallback=DEFAULT_DENSE_SPARSE_CROSSOVER
        )
        #: Batched crossover; falls back to the serial one when only that
        #: was measured.
        self.batched_crossover = resolve(
            batched_crossover,
            "batched_crossover_size",
            "crossover_size",
            fallback=self.crossover,
        )
        self._instances: Dict[str, LinearSolver] = {}
        self._warned_no_scipy = False

    def _backend(self, name: str) -> LinearSolver:
        solver = self._instances.get(name)
        if solver is None:
            solver = _BACKENDS[name]()
            self._instances[name] = solver
        return solver

    def select(self, compiled, trials: Optional[int] = None) -> LinearSolver:
        batched = trials is not None
        threshold = self.batched_crossover if batched else self.crossover
        want_sparse = (
            compiled.size >= threshold and compiled.sparsity_pattern() is not None
        )
        if want_sparse and not scipy_available():
            if not self._warned_no_scipy:
                warnings.warn(
                    f"solver='auto' would use the sparse backend for this "
                    f"{compiled.size}-unknown system, but scipy is not "
                    "installed; falling back to the dense backend (slower and "
                    "O(n^2) memory at this size). Install scipy — pip install "
                    "scipy, or this package's [sparse] extra — to enable it.",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._warned_no_scipy = True
            want_sparse = False
        if want_sparse:
            return self._backend("sparse-batched" if batched else "sparse")
        return self._backend("batched" if batched else "dense")

    # Direct solves (no engine selection step): route by matrix size so an
    # AutoSolver instance still works wherever a plain backend would.
    def _direct(self, n: int) -> LinearSolver:
        if n >= self.crossover and scipy_available():
            return self._backend("sparse")
        return self._backend("dense")

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return self._direct(matrix.shape[0]).solve(matrix, rhs)

    def solve_batched(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        n = matrices.shape[-1]
        if n >= self.batched_crossover and scipy_available():
            return self._backend("sparse-batched").solve_batched(matrices, rhs)
        return self._backend("batched").solve_batched(matrices, rhs)


_BACKENDS: Dict[str, Type[LinearSolver]] = {
    DenseSolver.name: DenseSolver,
    SparseSolver.name: SparseSolver,
    BatchedDenseSolver.name: BatchedDenseSolver,
    BatchedSparseSolver.name: BatchedSparseSolver,
    AutoSolver.name: AutoSolver,
}


def available_backends() -> Tuple[str, ...]:
    """Names of the backends constructible in this environment."""
    names = [DenseSolver.name, BatchedDenseSolver.name, AutoSolver.name]
    if scipy_available():
        names[1:1] = [SparseSolver.name]
        names.insert(3, BatchedSparseSolver.name)
    return tuple(names)


def get_solver(spec: Union[None, str, LinearSolver] = None) -> LinearSolver:
    """Resolve a solver spec: ``None`` (dense default), a name, or an instance."""
    if spec is None:
        return DenseSolver()
    if isinstance(spec, LinearSolver):
        return spec
    if isinstance(spec, str):
        backend = _BACKENDS.get(spec.lower())
        if backend is None:
            raise ValueError(
                f"unknown solver backend {spec!r}; expected one of {sorted(_BACKENDS)}"
            )
        return backend()
    raise TypeError(
        f"solver must be None, a backend name or a LinearSolver instance, got {spec!r}"
    )
