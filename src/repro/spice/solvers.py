"""Pluggable linear-solver backends for the analysis engine.

Every Newton iteration of every analysis ends in one linear solve of the
assembled MNA system.  :class:`~repro.spice.engine.AnalysisEngine` routes
that solve through a :class:`LinearSolver` instance — the *solver seam* —
so the backend can be swapped without touching the assembly or the
iteration logic:

* :class:`DenseSolver` — ``np.linalg.solve`` on the dense assembled matrix.
  The default, and the reference the other backends are tested against.
* :class:`SparseSolver` — SciPy sparse LU (SuperLU) on a CSC matrix whose
  *structure* is precomputed once from the compiled circuit's
  :class:`~repro.spice.engine.SparsityPattern`.  A pattern-assembly backend
  (:attr:`LinearSolver.wants_pattern_assembly`): the engine hands it the
  ``(nnz,)`` CSC data array of ``CompiledCircuit.assemble_sparse`` directly,
  so no dense matrix is ever formed.  Pays off on large lattices, where the
  MNA matrix is overwhelmingly empty.  Requires the optional ``scipy``
  dependency — install it directly or through this package's ``[sparse]``
  extra.
* :class:`BatchedDenseSolver` — stacks ``(trials, n, n)`` systems and
  solves them in a single vectorized LAPACK call.  The Monte-Carlo engine
  runs same-pattern trials through this backend
  (:meth:`~repro.spice.montecarlo.MonteCarloEngine.run_batched_dc`); its
  per-system results are bit-identical to :class:`DenseSolver` on the same
  matrices.
* :class:`BatchedSparseSolver` — the sparse twin of the batched backend:
  the CSC *structure* (canonical ordering, position maps, ghost trimming)
  is analyzed once per topology and shared by every trial, then each trial
  of the ``(trials, nnz)`` data stack is numerically factorized and solved
  through SuperLU over that shared structure.  Memory scales as
  ``trials * nnz`` instead of the dense stack's ``trials * n^2``.
* :class:`AutoSolver` — a *policy* backend (``solver="auto"``, the default
  spec value): picks dense vs sparse — and their batched variants — from
  the system size, the trial count and the measured dense/sparse crossover
  recorded in ``BENCH_solvers.json``.  Degrades gracefully to dense (with
  an actionable warning) when SciPy is unavailable.

Select a backend by name through any analysis frontend::

    dc_operating_point(circuit, solver="sparse")
    transient_analysis(circuit, 1e-6, 1e-9, solver="auto")

or hand a configured instance to ``get_solver`` / the engine directly.
Backends signal a numerically singular system uniformly by raising
``np.linalg.LinAlgError``, so the engine's gmin-bump retry works the same
whichever backend is active.

Two cross-cutting layers ride on the seam:

* a :class:`FactorizationCache` (on by default in the sparse backends)
  that fingerprints every pattern assembly and reuses the existing LU when
  the CSC data is bitwise unchanged — constant-Jacobian transient steps,
  the shared-base fast path and frozen-trial re-solves stop paying
  ``splu``, with results bit-identical by construction;
* an optional ``threads=`` knob on the sparse-batched backend that fans
  the per-trial factorizations of a stacked solve across a
  ``ThreadPoolExecutor`` (SuperLU releases the GIL), with identical
  numbers whatever the thread count.

Every backend keeps monotonic ``solver_stats()`` counters
(``factorizations`` / ``factorization_reuses``) that the engine surfaces
in its convergence records.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "LinearSolver",
    "DenseSolver",
    "SparseSolver",
    "BatchedDenseSolver",
    "BatchedSparseSolver",
    "AutoSolver",
    "FactorizationCache",
    "Factorization",
    "DEFAULT_DENSE_SPARSE_CROSSOVER",
    "DEFAULT_FACTOR_CACHE_CAPACITY",
    "get_solver",
    "resolve_threads",
    "available_backends",
    "scipy_available",
    "recorded_crossovers",
]

#: Fallback system size above which :class:`AutoSolver` prefers the sparse
#: backends when no measured crossover is recorded.  Calibrated on the
#: identity-lattice scalability benches (``benchmarks/bench_solvers.py``),
#: where sparse SuperLU first beats the dense LAPACK solve near n ≈ 300.
DEFAULT_DENSE_SPARSE_CROSSOVER = 300

#: LRU capacity of the per-solver :class:`FactorizationCache`.  A handful
#: of live LU objects covers the reuse patterns the engine actually
#: produces (a constant Jacobian across transient steps, the shared-base
#: fast path, an interleaved gmin rung) while bounding the memory held for
#: large-fill factorizations.
DEFAULT_FACTOR_CACHE_CAPACITY = 8


def resolve_threads(threads: Union[None, int, str]) -> int:
    """Normalize a ``threads=`` knob to a worker count (0 = serial loop).

    ``None`` keeps the historical serial loop, ``"auto"`` takes
    ``os.cpu_count()`` (degrading to the serial loop on a 1-CPU host), and
    an explicit int is used as-is (values below 2 mean serial).
    """
    if threads is None:
        return 0
    if threads == "auto":
        count = os.cpu_count() or 1
        return count if count > 1 else 0
    count = int(threads)
    if count < 1:
        raise ValueError(f"threads must be >= 1 or 'auto', got {threads!r}")
    return count if count > 1 else 0


def _import_scipy_sparse():
    """Import hook for the optional SciPy dependency (monkeypatch point).

    Returns ``(scipy.sparse, scipy.sparse.linalg)`` or raises ImportError
    with an actionable message.  Kept as a module-level function so tests
    (and environments without SciPy) exercise the failure path cleanly.
    """
    try:
        import scipy.sparse
        import scipy.sparse.linalg
    except ImportError as error:  # pragma: no cover - depends on environment
        raise ImportError(
            "the sparse solver backend needs scipy; install the optional "
            "extra (pip install scipy, or this package's [sparse] extra) or use solver='dense'"
        ) from error
    return scipy.sparse, scipy.sparse.linalg


def scipy_available() -> bool:
    """Whether the optional SciPy dependency (sparse backend) is importable."""
    try:
        _import_scipy_sparse()
    except ImportError:
        return False
    return True


class FactorizationCache:
    """Keyed LRU of numeric factorizations over one CSC structure.

    Keys are ``(structure token, data fingerprint)`` where the fingerprint
    is a BLAKE2b digest of the raw CSC data bytes: two assemblies hit the
    same entry exactly when they are *bitwise* identical, and since the LU
    is a pure function of the matrix, a cache hit returns results
    bit-identical to refactorizing.  This is what lets the cache stay on by
    default — constant-Jacobian transient steps, the shared-base fast path
    and frozen-trial re-solves all reuse their LU with zero numerical
    drift.

    Thread-safe: the threaded batched backend factorizes trials
    concurrently and publishes through :meth:`put` under a lock (a racing
    duplicate factorization is benign — the LUs are identical and one
    wins).
    """

    def __init__(self, capacity: int = DEFAULT_FACTOR_CACHE_CAPACITY):
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[int, bytes], object]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def fingerprint(data: np.ndarray) -> bytes:
        """128-bit BLAKE2b digest of an array's raw bytes."""
        return hashlib.blake2b(
            np.ascontiguousarray(data).tobytes(), digest_size=16
        ).digest()

    def get(self, structure: int, fingerprint: bytes):
        """The cached factorization for a key, or ``None`` (marks it MRU)."""
        key = (structure, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, structure: int, fingerprint: bytes, factorization) -> None:
        """Insert a factorization, evicting the LRU entry beyond capacity."""
        key = (structure, fingerprint)
        with self._lock:
            self._entries[key] = factorization
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # A threading.Lock cannot be pickled; a cache travels empty.
    def __getstate__(self):
        return {"capacity": self.capacity}

    def __setstate__(self, state):
        self.__init__(state.get("capacity", DEFAULT_FACTOR_CACHE_CAPACITY))


class Factorization:
    """A held LU handle the engine keeps across Newton rounds and steps.

    Returned by :meth:`LinearSolver.factorize` /
    :meth:`SparseSolver.factorize_pattern`; the modified-Newton reuse state
    stores these so a frozen Jacobian keeps solving without refactorizing.
    Counting convention: the solve that *paid* for a fresh factorization is
    free; every later solve through the handle is a reuse on the owning
    solver's :meth:`~LinearSolver.solver_stats`.
    """

    __slots__ = ("fingerprint", "_owner", "_solve", "_free_solves")

    def __init__(self, owner: "LinearSolver", solve, fingerprint: bytes, fresh: bool):
        self.fingerprint = fingerprint
        self._owner = owner
        self._solve = solve
        self._free_solves = 1 if fresh else 0

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._free_solves:
            self._free_solves -= 1
        else:
            self._owner._count_reuses(1)
        return self._solve(rhs)


class _MatrixRefactorization:
    """Reuse handle of backends without a persistent LU (dense LAPACK).

    Holds a copy of the frozen matrix and re-runs the owner's dense solve
    against it — each solve honestly counts as a factorization (LAPACK
    refactorizes every call), so dense ``newton="reuse"`` keeps the
    modified-Newton *iteration* semantics without claiming LU savings.
    """

    __slots__ = ("fingerprint", "_owner", "_matrix")

    def __init__(self, owner: "LinearSolver", matrix: np.ndarray, fingerprint: bytes):
        self.fingerprint = fingerprint
        self._owner = owner
        self._matrix = np.array(matrix, copy=True)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._owner.solve(self._matrix, rhs)


class LinearSolver:
    """Protocol of the engine's linear-solve seam.

    A solver receives the assembled (ghost-trimmed) Jacobian and right-hand
    side of one Newton iteration and returns the update's solution vector.
    Implementations must raise ``np.linalg.LinAlgError`` on a singular
    system so the engine's fallbacks (gmin bumping) stay backend-agnostic.

    :meth:`bind` is an optional pre-solve hook: the engine calls it with the
    active :class:`~repro.spice.engine.CompiledCircuit` before a Newton run
    so structure-caching backends (sparse) can precompute their sparsity
    pattern once per compiled topology.

    Backends that set :attr:`wants_pattern_assembly` receive CSC data
    arrays assembled straight into the compiled circuit's
    :class:`~repro.spice.engine.SparsityPattern`
    (:meth:`solve_pattern`/:meth:`solve_pattern_batched`) instead of dense
    matrices — the engine never materializes ``(n, n)`` for them.

    :meth:`select` resolves *policy* backends: the engine calls it with the
    compiled circuit (and the trial count for batched runs) right before a
    Newton run, and the returned concrete backend does the solving.  Plain
    backends return themselves.
    """

    #: Registry name of the backend (``solver="<name>"`` in the frontends).
    name = "base"

    #: When True the engine assembles CSC pattern data
    #: (``CompiledCircuit.assemble_sparse*``) and calls
    #: :meth:`solve_pattern`/:meth:`solve_pattern_batched` instead of the
    #: dense :meth:`solve`/:meth:`solve_batched`.
    wants_pattern_assembly = False

    # Monotonic work counters (class defaults; += lazily creates the
    # instance attributes, so no backend needs an __init__ for them).
    _n_factorizations = 0
    _n_reuses = 0

    def _count_factorizations(self, count: int) -> None:
        self._n_factorizations = self._n_factorizations + count

    def _count_reuses(self, count: int) -> None:
        self._n_reuses = self._n_reuses + count

    def solver_stats(self) -> Dict[str, int]:
        """Monotonic work counters of this backend instance.

        ``factorizations`` counts numeric matrix factorizations actually
        performed; ``factorization_reuses`` counts linear solves served by
        an already-computed factorization (cache hits and modified-Newton
        bypass steps).  The engine snapshots these around each analysis to
        surface per-run counts in the convergence records.
        """
        return {
            "factorizations": self._n_factorizations,
            "factorization_reuses": self._n_reuses,
        }

    def select(self, compiled, trials: Optional[int] = None) -> "LinearSolver":
        """Resolve to the concrete backend for this run (default: self)."""
        return self

    def bind(self, compiled) -> None:
        """Precompute per-topology structure (default: nothing to do)."""

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one ``(n, n)`` system; raises ``LinAlgError`` if singular."""
        raise NotImplementedError

    def factorize(self, matrix: np.ndarray) -> "_MatrixRefactorization":
        """A reuse handle solving against this fixed (copied) matrix.

        The base handle re-runs :meth:`solve` per call; backends with a
        persistent LU (sparse) override this to return a real cached
        factorization (:class:`Factorization`).
        """
        return _MatrixRefactorization(
            self, matrix, FactorizationCache.fingerprint(matrix)
        )

    def solve_batched(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve stacked ``(T, n, n)`` systems against ``(T, n)`` vectors.

        ``active`` (an optional boolean trial mask) limits the work to the
        flagged rows — frozen (converged) trials stop paying
        factorizations; their output rows come back zero.  The base
        implementation loops over :meth:`solve`; backends with a genuinely
        batched kernel (dense LAPACK) override it.
        """
        if active is not None:
            out = np.zeros_like(rhs)
            for row in np.flatnonzero(active):
                out[row] = self.solve(matrices[row], rhs[row])
            return out
        return np.stack([self.solve(m, r) for m, r in zip(matrices, rhs)])

    def solve_pattern(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one system given as ``(nnz,)`` data of the bound pattern."""
        raise NotImplementedError(
            f"the {self.name!r} backend does not take pattern-assembled systems"
        )

    def solve_pattern_batched(
        self,
        data: np.ndarray,
        rhs: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve a ``(T, nnz)`` pattern-data stack against ``(T, n)`` vectors.

        ``active`` limits the solves to the flagged trials exactly like
        :meth:`solve_batched`.
        """
        if active is not None:
            out = np.zeros_like(rhs)
            for row in np.flatnonzero(active):
                out[row] = self.solve_pattern(data[row], rhs[row])
            return out
        return np.stack([self.solve_pattern(d, r) for d, r in zip(data, rhs)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DenseSolver(LinearSolver):
    """The default backend: one dense LAPACK solve per Newton iteration.

    Its :meth:`solve_batched` deliberately loops — this is the *per-trial
    dense path* the batched backend is benchmarked against.
    """

    name = "dense"

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        self._count_factorizations(1)
        return np.linalg.solve(matrix, rhs)


class BatchedDenseSolver(DenseSolver):
    """Dense backend whose batched solve is a single vectorized LAPACK call.

    ``np.linalg.solve`` on a ``(T, n, n)`` stack dispatches one gufunc call
    that factorizes every system without returning to Python, which is what
    makes batched Monte-Carlo trials cheap.  Each system in the stack is
    solved by the same LAPACK routine as a lone dense solve, so results are
    bit-identical to :class:`DenseSolver` system for system.
    """

    name = "batched"

    def solve_batched(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if active is not None:
            rows = np.flatnonzero(active)
            out = np.zeros_like(rhs)
            if rows.size:
                self._count_factorizations(int(rows.size))
                out[rows] = np.linalg.solve(
                    matrices[rows], rhs[rows][..., np.newaxis]
                )[..., 0]
            return out
        self._count_factorizations(int(matrices.shape[0]))
        return np.linalg.solve(matrices, rhs[..., np.newaxis])[..., 0]


class SparseSolver(LinearSolver):
    """SciPy SuperLU backend over the compiled circuit's sparsity pattern.

    :meth:`bind` takes the compiled circuit's shared
    :class:`~repro.spice.engine.SparsityPattern` (built once per topology);
    the engine then assembles straight into that pattern's CSC data array
    (:meth:`solve_pattern`) — no dense matrix, no per-iteration structure
    analysis.

    Circuits with custom (compatibility-path) elements have no precomputed
    pattern and still assemble densely; :meth:`solve` then probes the CSC
    structure from the first matrix it sees and reuses it for every later
    solve (a cheap gather plus a nonzero-count guard), only re-probing when
    a value appears outside the cached structure.
    """

    name = "sparse"
    wants_pattern_assembly = True

    def __init__(self, cache_capacity: int = DEFAULT_FACTOR_CACHE_CAPACITY):
        # Fail at construction, not mid-Newton, when scipy is missing.
        _import_scipy_sparse()
        self._bound_key: Optional[Tuple[int, int]] = None
        self._pattern = None  # the compiled circuit's SparsityPattern
        # Probed CSC structure of the dense fallback path (custom-element
        # circuits): (rows, cols, indices, indptr, n).
        self._probed: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]] = None
        #: LU cache over the bound pattern (cleared on every rebind).
        self.factorization_cache = FactorizationCache(cache_capacity)
        self._custom_types: Tuple[str, ...] = ()
        self._warned_reprobe = False

    def bind(self, compiled) -> None:
        key = (id(compiled), compiled.revision)
        if key == self._bound_key:
            return
        self._bound_key = key
        self._pattern = compiled.sparsity_pattern()  # None for custom elements
        self._probed = None
        self.factorization_cache.clear()
        self._custom_types = tuple(
            sorted({type(e).__name__ for e in compiled.custom_elements})
        )

    def _csc_from_dense(self, matrix: np.ndarray):
        """CSC form of a dense matrix without per-call structure analysis.

        Preference order: gather through the bound pattern; gather through
        the previously probed structure (guarded by a nonzero count — any
        value outside the cached structure forces a re-probe, so nothing is
        ever silently dropped); full conversion as the last resort, caching
        the structure it finds.
        """
        sparse, _ = _import_scipy_sparse()
        n = matrix.shape[0]
        pattern = self._pattern
        if pattern is not None and pattern.size == n:
            data = matrix[pattern.rows, pattern.cols]
            return sparse.csc_matrix(
                (data, pattern.indices, pattern.indptr), shape=matrix.shape
            )
        probed = self._probed
        if probed is not None and probed[4] == n:
            rows, cols, indices, indptr, _ = probed
            data = matrix[rows, cols]
            if np.count_nonzero(data) == np.count_nonzero(matrix):
                return sparse.csc_matrix((data, indices, indptr), shape=matrix.shape)
            if not self._warned_reprobe:
                # A value appeared outside the cached structure: some stamp
                # wanders across matrix positions between iterations, so
                # every mismatch re-pays a full structure probe.  Say so
                # once, naming the elements that keep the circuit off the
                # pattern fast path.
                offenders = (
                    ", ".join(self._custom_types)
                    if self._custom_types
                    else "unknown (no compiled circuit bound)"
                )
                warnings.warn(
                    "sparse solve is re-probing the CSC structure because a "
                    "matrix entry appeared outside the previously probed "
                    "pattern; custom (stamp-path) elements keep this circuit "
                    f"off the pattern fast path [offending element types: "
                    f"{offenders}]. Each such mismatch pays a full structure "
                    "analysis.",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._warned_reprobe = True
        system = sparse.csc_matrix(matrix)
        indices = system.indices.astype(np.int32, copy=True)
        indptr = system.indptr.astype(np.int32, copy=True)
        cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        self._probed = (indices.astype(np.int64), cols, indices, indptr, n)
        return system

    def _splu_solve(self, system, rhs: np.ndarray) -> np.ndarray:
        _, sparse_linalg = _import_scipy_sparse()
        try:
            lu = sparse_linalg.splu(system)
        except RuntimeError as error:
            # SuperLU reports an exactly singular factor as RuntimeError;
            # normalize to the dense backend's exception so the engine's
            # gmin-bump retry is backend-agnostic.
            raise np.linalg.LinAlgError(str(error)) from error
        self._count_factorizations(1)
        return lu.solve(rhs)

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return self._splu_solve(self._csc_from_dense(matrix), rhs)

    def _require_pattern(self, caller: str):
        pattern = self._pattern
        if pattern is None:
            raise RuntimeError(
                f"{caller} needs a bound sparsity pattern; bind() the "
                "compiled circuit first"
            )
        return pattern

    def _factorize(self, data: np.ndarray, count: bool = True):
        """The LU for one pattern assembly: ``(lu, fingerprint, cache_hit)``.

        Consults the :class:`FactorizationCache` first — a bitwise-unchanged
        data array reuses the existing LU, which is bit-identical to
        refactorizing.  ``count=False`` defers the counter updates to the
        caller (the threaded batched path tallies in the main thread).
        """
        pattern = self._require_pattern("solve_pattern")
        fingerprint = FactorizationCache.fingerprint(data)
        structure = id(pattern)
        lu = self.factorization_cache.get(structure, fingerprint)
        if lu is not None:
            if count:
                self._count_reuses(1)
            return lu, fingerprint, True
        sparse, sparse_linalg = _import_scipy_sparse()
        system = sparse.csc_matrix(
            (data, pattern.indices, pattern.indptr), shape=(pattern.size, pattern.size)
        )
        try:
            lu = sparse_linalg.splu(system)
        except RuntimeError as error:
            raise np.linalg.LinAlgError(str(error)) from error
        if count:
            self._count_factorizations(1)
        self.factorization_cache.put(structure, fingerprint, lu)
        return lu, fingerprint, False

    def solve_pattern(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        lu, _, _ = self._factorize(data)
        return lu.solve(rhs)

    def factorize_pattern(self, data: np.ndarray) -> Factorization:
        """A reuse handle over one pattern assembly (modified-Newton state).

        The handle keeps a strong reference to its LU, so it stays valid
        after the cache evicts the entry; its solves count as reuses on
        this solver (see :class:`Factorization`).
        """
        lu, fingerprint, hit = self._factorize(data, count=False)
        if not hit:
            self._count_factorizations(1)
        return Factorization(self, lu.solve, fingerprint, fresh=not hit)


class BatchedSparseSolver(SparseSolver):
    """Sparse backend for stacked trials over one shared CSC structure.

    The *symbolic* work — canonical CSC ordering, stamp-position maps,
    ghost trimming — happens once per topology in the shared
    :class:`~repro.spice.engine.SparsityPattern`; every trial of a
    ``(trials, nnz)`` data stack then reuses that structure and only pays
    the per-trial *numeric* factorization and triangular solves (SciPy's
    SuperLU binding exposes no cross-factorization symbolic reuse, so each
    trial runs a full ``splu`` over the shared index arrays).  A singular
    trial anywhere in the stack raises ``LinAlgError`` for the whole stack,
    exactly like the batched dense backend, so the engine's per-trial
    isolation and gmin/source-stepping ladders work unchanged.
    """

    name = "sparse-batched"

    def __init__(
        self,
        threads: Union[None, int, str] = None,
        cache_capacity: int = DEFAULT_FACTOR_CACHE_CAPACITY,
    ):
        super().__init__(cache_capacity=cache_capacity)
        #: Worker-thread count for per-trial factorizations (0 = the
        #: historical serial loop; see :func:`resolve_threads`).
        self.threads = resolve_threads(threads)

    def _map_trials(self, rows: np.ndarray, worker) -> List:
        """Run ``worker(trial)`` over the rows, threaded when configured.

        SuperLU releases the GIL during factorization and the triangular
        solves, so a ThreadPoolExecutor fans the per-trial numeric work
        across cores; each trial's result is bitwise independent of the
        thread count (the trials share no mutable state beyond the
        lock-protected cache).  A singular trial's ``LinAlgError``
        propagates for the whole stack, exactly like the serial loop.
        """
        if self.threads > 1 and rows.size > 1:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                return list(pool.map(worker, rows))
        return [worker(trial) for trial in rows]

    def solve_pattern_batched(
        self,
        data: np.ndarray,
        rhs: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._require_pattern("solve_pattern_batched")
        if active is not None:
            rows = np.flatnonzero(np.asarray(active, dtype=bool))
            out = np.zeros_like(rhs)
        else:
            rows = np.arange(data.shape[0])
            out = np.empty_like(rhs)

        def worker(trial):
            lu, _, hit = self._factorize(data[trial], count=False)
            return trial, lu.solve(rhs[trial]), hit

        results = self._map_trials(rows, worker)
        hits = 0
        for trial, solution, hit in results:
            out[trial] = solution
            hits += hit
        # Tally in the calling thread so the counters never race.
        self._count_reuses(hits)
        self._count_factorizations(len(results) - hits)
        return out

    def factorize_pattern_batched(
        self,
        data: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> List[Optional[Factorization]]:
        """Per-trial reuse handles over a ``(T, nnz)`` stack (threaded).

        Returns a list of length ``T`` with a :class:`Factorization` per
        active trial (``None`` at inactive rows).  The engine's batched
        modified-Newton state holds these across rounds and steps, so a
        frozen trial keeps its LU without refactorizing.
        """
        self._require_pattern("factorize_pattern_batched")
        if active is not None:
            rows = np.flatnonzero(np.asarray(active, dtype=bool))
        else:
            rows = np.arange(data.shape[0])
        handles: List[Optional[Factorization]] = [None] * data.shape[0]

        def worker(trial):
            lu, fingerprint, hit = self._factorize(data[trial], count=False)
            return trial, lu, fingerprint, hit

        results = self._map_trials(rows, worker)
        fresh = 0
        for trial, lu, fingerprint, hit in results:
            handles[trial] = Factorization(self, lu.solve, fingerprint, fresh=not hit)
            fresh += not hit
        self._count_factorizations(fresh)
        return handles


@lru_cache(maxsize=8)
def _load_bench_payload(path: str) -> Optional[Dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def recorded_crossovers() -> Dict[str, float]:
    """Measured solver crossovers from a recorded ``BENCH_solvers.json``.

    Looked up, in order, at ``$REPRO_BENCH_SOLVERS`` (an explicit file
    path), ``$BENCH_JSON_DIR/BENCH_solvers.json`` (the CI benchmark
    artifact directory) and ``./BENCH_solvers.json``; the first readable
    JSON object wins.  Returns the numeric ``*crossover_size`` entries
    found anywhere in the payload (top level or one level down), ``{}``
    when nothing is recorded.  File reads are memoized per path.
    """
    candidates = []
    explicit = os.environ.get("REPRO_BENCH_SOLVERS")
    if explicit:
        candidates.append(explicit)
    directory = os.environ.get("BENCH_JSON_DIR")
    if directory:
        candidates.append(os.path.join(directory, "BENCH_solvers.json"))
    candidates.append(os.path.join(os.getcwd(), "BENCH_solvers.json"))
    for path in candidates:
        payload = _load_bench_payload(path)
        if payload is None:
            continue
        found: Dict[str, float] = {}
        sections = [payload] + [v for v in payload.values() if isinstance(v, dict)]
        for section in sections:
            for key, value in section.items():
                if key.endswith("crossover_size") and isinstance(value, (int, float)):
                    found.setdefault(key, float(value))
        if found:
            return found
    return {}


class AutoSolver(LinearSolver):
    """Size/trial-aware backend selection behind the normal solver seam.

    ``solver="auto"`` — the default spec value — resolves to a concrete
    backend per Newton run through :meth:`select`:

    * systems below the dense/sparse crossover use :class:`DenseSolver`
      (serial) or :class:`BatchedDenseSolver` (stacked trials);
    * systems at or above it use :class:`SparseSolver` /
      :class:`BatchedSparseSolver`, assembling straight into the CSC
      pattern (``trials * nnz`` memory instead of ``trials * n^2``).

    The crossover comes from, in order: the constructor argument, the
    ``REPRO_SOLVER_CROSSOVER`` environment variable, the measured
    ``crossover_size``/``batched_crossover_size`` recorded in
    ``BENCH_solvers.json`` (see :func:`recorded_crossovers`), and finally
    :data:`DEFAULT_DENSE_SPARSE_CROSSOVER`.

    Circuits with custom (compatibility-path) elements have no static
    sparsity pattern and always select dense.  When SciPy is missing, a
    selection that would have gone sparse falls back to dense and warns
    once (RuntimeWarning) with the install hint — the run still completes.
    """

    name = "auto"

    def __init__(
        self,
        crossover: Optional[int] = None,
        batched_crossover: Optional[int] = None,
        threads: Union[None, int, str] = None,
    ):
        env = os.environ.get("REPRO_SOLVER_CROSSOVER")
        recorded = {}
        if crossover is None or batched_crossover is None:
            recorded = recorded_crossovers()

        def resolve(value: Optional[int], *keys: str, fallback: int) -> int:
            if value is not None:
                return int(value)
            if env:
                try:
                    return int(env)
                except ValueError:
                    pass
            for key in keys:
                if key in recorded:
                    return int(recorded[key])
            return fallback

        #: Serial dense/sparse crossover (system size).
        self.crossover = resolve(
            crossover, "crossover_size", fallback=DEFAULT_DENSE_SPARSE_CROSSOVER
        )
        #: Batched crossover; falls back to the serial one when only that
        #: was measured.
        self.batched_crossover = resolve(
            batched_crossover,
            "batched_crossover_size",
            "crossover_size",
            fallback=self.crossover,
        )
        self._instances: Dict[str, LinearSolver] = {}
        self._warned_no_scipy = False
        #: Worker threads handed to the sparse-batched backend it selects.
        self.threads = resolve_threads(threads)

    def _backend(self, name: str) -> LinearSolver:
        solver = self._instances.get(name)
        if solver is None:
            if name == BatchedSparseSolver.name and self.threads:
                solver = BatchedSparseSolver(threads=self.threads)
            else:
                solver = _BACKENDS[name]()
            self._instances[name] = solver
        return solver

    def solver_stats(self) -> Dict[str, int]:
        """Counters summed over every concrete backend selected so far."""
        stats = {"factorizations": 0, "factorization_reuses": 0}
        for solver in self._instances.values():
            for key, value in solver.solver_stats().items():
                stats[key] += value
        return stats

    def select(self, compiled, trials: Optional[int] = None) -> LinearSolver:
        batched = trials is not None
        threshold = self.batched_crossover if batched else self.crossover
        want_sparse = (
            compiled.size >= threshold and compiled.sparsity_pattern() is not None
        )
        if want_sparse and not scipy_available():
            if not self._warned_no_scipy:
                warnings.warn(
                    f"solver='auto' would use the sparse backend for this "
                    f"{compiled.size}-unknown system, but scipy is not "
                    "installed; falling back to the dense backend (slower and "
                    "O(n^2) memory at this size). Install scipy — pip install "
                    "scipy, or this package's [sparse] extra — to enable it.",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._warned_no_scipy = True
            want_sparse = False
        if want_sparse:
            return self._backend("sparse-batched" if batched else "sparse")
        return self._backend("batched" if batched else "dense")

    # Direct solves (no engine selection step): route by matrix size so an
    # AutoSolver instance still works wherever a plain backend would.
    def _direct(self, n: int) -> LinearSolver:
        if n >= self.crossover and scipy_available():
            return self._backend("sparse")
        return self._backend("dense")

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return self._direct(matrix.shape[0]).solve(matrix, rhs)

    def solve_batched(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = matrices.shape[-1]
        if n >= self.batched_crossover and scipy_available():
            return self._backend("sparse-batched").solve_batched(
                matrices, rhs, active=active
            )
        return self._backend("batched").solve_batched(matrices, rhs, active=active)


_BACKENDS: Dict[str, Type[LinearSolver]] = {
    DenseSolver.name: DenseSolver,
    SparseSolver.name: SparseSolver,
    BatchedDenseSolver.name: BatchedDenseSolver,
    BatchedSparseSolver.name: BatchedSparseSolver,
    AutoSolver.name: AutoSolver,
}


def available_backends() -> Tuple[str, ...]:
    """Names of the backends constructible in this environment."""
    names = [DenseSolver.name, BatchedDenseSolver.name, AutoSolver.name]
    if scipy_available():
        names[1:1] = [SparseSolver.name]
        names.insert(3, BatchedSparseSolver.name)
    return tuple(names)


def get_solver(
    spec: Union[None, str, LinearSolver] = None,
    threads: Union[None, int, str] = None,
) -> LinearSolver:
    """Resolve a solver spec: ``None`` (dense default), a name, or an instance.

    ``threads`` fans the per-trial sparse factorizations of stacked solves
    across a thread pool; it is only meaningful for the ``"sparse-batched"``
    backend (or ``"auto"``, which forwards it to the sparse-batched backend
    it selects), and therefore needs SciPy.
    """
    if threads is not None:
        if not scipy_available():
            raise RuntimeError(
                "threads= fans per-trial SuperLU factorizations across a "
                "thread pool, which needs the sparse-batched backend and "
                "therefore scipy; install scipy (pip install scipy, or this "
                "package's [sparse] extra) or drop the threads= argument"
            )
        if isinstance(spec, LinearSolver):
            raise ValueError(
                "threads= cannot reconfigure an existing solver instance; "
                "construct it with threads directly, e.g. "
                "BatchedSparseSolver(threads=...) or AutoSolver(threads=...)"
            )
        name = spec.lower() if isinstance(spec, str) else spec
        if name == AutoSolver.name:
            return AutoSolver(threads=threads)
        if name == BatchedSparseSolver.name:
            return BatchedSparseSolver(threads=threads)
        raise ValueError(
            f"threads= applies to the 'sparse-batched' (or 'auto') backend, "
            f"not {spec!r}; pick solver='sparse-batched'/'auto' or drop threads="
        )
    if spec is None:
        return DenseSolver()
    if isinstance(spec, LinearSolver):
        return spec
    if isinstance(spec, str):
        backend = _BACKENDS.get(spec.lower())
        if backend is None:
            raise ValueError(
                f"unknown solver backend {spec!r}; expected one of {sorted(_BACKENDS)}"
            )
        return backend()
    raise TypeError(
        f"solver must be None, a backend name or a LinearSolver instance, got {spec!r}"
    )
