"""Transient analysis (thin frontend over the analysis engine).

The time-marching loop, the per-step Newton iteration and the vectorized
capacitor companion-history updates live in
:class:`repro.spice.engine.AnalysisEngine`; this module keeps the stable
:func:`transient_analysis` entry point and the :class:`TransientResult`
type.  Backward-Euler and trapezoidal integration with a fixed timestep are
entirely adequate for the paper's circuits, whose time constants are set by
the 500 kOhm pull-up and femto-farad load capacitors (tens of nanoseconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.spice.elements.sources import VoltageSource
from repro.spice.engine import get_engine
from repro.spice.netlist import Circuit


@dataclass
class TransientResult:
    """Waveforms produced by a transient analysis.

    Attributes
    ----------
    circuit:
        The analysed circuit.
    time_s:
        Time points (including t = 0).
    solutions:
        Matrix of MNA solutions, one row per time point.
    converged:
        False if any time step failed to converge (the run still completes).
    """

    circuit: Circuit
    time_s: np.ndarray
    solutions: np.ndarray
    converged: bool

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveform of a named node [V] (zeros for ground)."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros_like(self.time_s)
        return self.solutions[:, index]

    def source_current(self, source_name: str) -> np.ndarray:
        """Current waveform through a voltage source [A]."""
        source = self.circuit.element(source_name)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects the name of a VoltageSource")
        return self.solutions[:, source.branch_position(self.circuit)]

    def sample_voltage(self, node_name: str, time_s: float) -> float:
        """Node voltage interpolated at an arbitrary time."""
        return float(np.interp(time_s, self.time_s, self.voltage(node_name)))

    def sample_voltages(self, node_name: str, times_s: Sequence[float]) -> np.ndarray:
        """Node voltage interpolated at several times at once [V]."""
        return np.interp(np.asarray(times_s, dtype=float), self.time_s, self.voltage(node_name))

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the final time point."""
        return {
            name: float(self.solutions[-1, self.circuit.node_index(name)])
            for name in self.circuit.node_names
        }


def transient_analysis(
    circuit: Circuit,
    stop_time_s: float,
    timestep_s: float,
    integration: str = "be",
    max_newton_iterations: int = 100,
    tolerance_v: float = 1e-6,
    gmin: float = 1e-9,
    use_initial_conditions: bool = False,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Delegates to the circuit's cached :class:`~repro.spice.engine.AnalysisEngine`,
    which starts from a DC operating point at ``t = 0`` (all capacitors open)
    and then marches with a fixed timestep, re-solving the nonlinear system
    at every step by Newton iteration with the capacitor companion models of
    the selected integration method.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time_s / timestep_s:
        Simulation span and fixed step.
    integration:
        ``"be"`` (backward Euler, default — very robust) or ``"trap"``
        (trapezoidal, second order).
    max_newton_iterations / tolerance_v:
        Per-step Newton controls.
    gmin:
        Node-to-ground minimum conductance.
    use_initial_conditions:
        When True the analysis starts from all-zero node voltages (plus the
        capacitor initial conditions) instead of the DC operating point at
        ``t = 0`` — the equivalent of SPICE's ``UIC``.
    """
    return get_engine(circuit).solve_transient(
        stop_time_s,
        timestep_s,
        integration=integration,
        max_newton_iterations=max_newton_iterations,
        tolerance_v=tolerance_v,
        gmin=gmin,
        use_initial_conditions=use_initial_conditions,
    )
