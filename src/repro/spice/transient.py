"""Transient analysis (thin frontend over the analysis engine).

The time-marching loop, the per-step Newton iteration and the vectorized
capacitor companion-history updates live in
:class:`repro.spice.engine.AnalysisEngine`; this module keeps the stable
:func:`transient_analysis` entry point, the :class:`TransientResult` type
and the :class:`TransientConvergenceInfo` step/Newton statistics record.

Backward-Euler and trapezoidal integration are offered with either a fixed
timestep (bit-compatible with the historical behaviour, and entirely
adequate for the paper's circuits whose time constants are set by the
500 kOhm pull-up and femto-farad load capacitors) or an adaptive LTE-based
step-size controller (``adaptive=True``), which cuts the step count on
waveforms with long settled stretches — the dominant per-trial cost of a
Monte-Carlo transient study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.spice.elements.sources import VoltageSource
from repro.spice.engine import get_engine
from repro.spice.netlist import Circuit
from repro.spice.solvers import LinearSolver


@dataclass(frozen=True)
class TransientConvergenceInfo:
    """How a transient march stepped and converged.

    The transient counterpart of :class:`~repro.spice.dcop.ConvergenceInfo`:
    attached to every :class:`TransientResult` so a run rescued by many
    Newton iterations — or an adaptive run that rejected half its steps —
    is never silent.

    Attributes
    ----------
    strategy:
        ``"fixed-step"`` or ``"adaptive"``.
    newton_iterations:
        Total Newton iterations summed over every attempted step.
    max_newton_residual_v:
        Worst final per-step Newton update [V] across accepted steps.
    accepted_steps / rejected_steps:
        Step-acceptance statistics of the controller (a fixed-step run
        accepts every step by construction).
    min_step_s / max_step_s:
        Smallest and largest accepted step size [s].
    factorizations / factorization_reuses:
        Numeric matrix factorizations performed over the whole march
        (warm start included), and solves served by an already-computed
        factorization (fingerprint cache hits plus ``newton="reuse"``
        bypass rounds).  Zero for non-factoring solver backends.
    """

    strategy: str
    newton_iterations: int
    max_newton_residual_v: float
    accepted_steps: int
    rejected_steps: int
    min_step_s: float
    max_step_s: float
    factorizations: int = 0
    factorization_reuses: int = 0

    @property
    def total_steps(self) -> int:
        """Attempted steps (accepted + rejected)."""
        return self.accepted_steps + self.rejected_steps

    @property
    def acceptance_fraction(self) -> float:
        """Fraction of attempted steps that were accepted."""
        total = self.total_steps
        return float(self.accepted_steps) / total if total else 1.0


@dataclass
class TransientResult:
    """Waveforms produced by a transient analysis.

    Attributes
    ----------
    circuit:
        The analysed circuit.
    time_s:
        Time points (including t = 0).  Uniformly spaced for fixed-step
        runs; the accepted-step grid for adaptive runs.
    solutions:
        Matrix of MNA solutions, one row per time point.
    converged:
        False if any time step failed to converge (the run still completes).
    convergence_info:
        Step-acceptance and Newton statistics of the march (see
        :class:`TransientConvergenceInfo`).
    """

    circuit: Circuit
    time_s: np.ndarray
    solutions: np.ndarray
    converged: bool
    convergence_info: Optional[TransientConvergenceInfo] = None

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveform of a named node [V] (zeros for ground)."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros_like(self.time_s)
        return self.solutions[:, index]

    def source_current(self, source_name: str) -> np.ndarray:
        """Current waveform through a voltage source [A]."""
        source = self.circuit.element(source_name)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects the name of a VoltageSource")
        return self.solutions[:, source.branch_position(self.circuit)]

    def sample_voltage(self, node_name: str, time_s: float) -> float:
        """Node voltage interpolated at an arbitrary time."""
        return float(np.interp(time_s, self.time_s, self.voltage(node_name)))

    def sample_voltages(self, node_name: str, times_s: Sequence[float]) -> np.ndarray:
        """Node voltage interpolated at several times at once [V]."""
        return np.interp(np.asarray(times_s, dtype=float), self.time_s, self.voltage(node_name))

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the final time point."""
        return {
            name: float(self.solutions[-1, self.circuit.node_index(name)])
            for name in self.circuit.node_names
        }


@dataclass
class BatchedTransientResult:
    """Stacked transient waveforms of many lockstep Monte-Carlo trials.

    Produced by
    :meth:`repro.spice.engine.AnalysisEngine.solve_transient_batched`: all
    trials share the circuit topology and the fixed time grid, differing
    only in their compiled parameter stacks.

    Attributes
    ----------
    circuit:
        The analysed circuit.
    time_s:
        The shared fixed-step time axis (including t = 0).
    solutions:
        ``(trials, steps + 1, n)`` stack of MNA solutions.
    converged:
        Per-trial flag: every timestep of the trial converged.
    newton_iterations:
        Per-trial Newton totals over the march (the t = 0 DC warm start is
        not counted, matching :class:`TransientConvergenceInfo` semantics).
    max_residuals:
        Worst final per-step Newton update [V] per trial.
    strategies:
        ``"lockstep"`` for trials that completed the batched march,
        ``"serial-fallback"`` for trials re-run through the serial
        :meth:`~repro.spice.engine.AnalysisEngine.solve_transient` ladders.
    """

    circuit: Circuit
    time_s: np.ndarray
    solutions: np.ndarray
    converged: np.ndarray
    newton_iterations: np.ndarray
    max_residuals: np.ndarray
    strategies: tuple
    #: Aggregate factorization counters over the whole batched march (not
    #: per trial: stacked factorizations are shared across the live set).
    factorizations: int = 0
    factorization_reuses: int = 0

    def __len__(self) -> int:
        return self.solutions.shape[0]

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    @property
    def total_newton_iterations(self) -> int:
        return int(self.newton_iterations.sum())

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveforms of a named node across all trials: ``(trials, steps + 1)``."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros(self.solutions.shape[:2])
        return self.solutions[:, :, index].copy()

    def trial(self, trial: int) -> TransientResult:
        """One trial's waveforms as an ordinary :class:`TransientResult`."""
        steps = self.time_s.size - 1
        return TransientResult(
            circuit=self.circuit,
            time_s=self.time_s.copy(),
            solutions=self.solutions[trial].copy(),
            converged=bool(self.converged[trial]),
            convergence_info=TransientConvergenceInfo(
                strategy=self.strategies[trial],
                newton_iterations=int(self.newton_iterations[trial]),
                max_newton_residual_v=float(self.max_residuals[trial]),
                accepted_steps=steps,
                rejected_steps=0,
                min_step_s=float(self.time_s[1] - self.time_s[0]) if steps else 0.0,
                max_step_s=float(self.time_s[1] - self.time_s[0]) if steps else 0.0,
            ),
        )


def transient_analysis(
    circuit: Circuit,
    stop_time_s: float,
    timestep_s: float,
    integration: str = "be",
    max_newton_iterations: int = 100,
    tolerance_v: float = 1e-6,
    gmin: float = 1e-9,
    use_initial_conditions: bool = False,
    adaptive: bool = False,
    lte_tolerance_v: float = 2e-3,
    min_timestep_s: Optional[float] = None,
    max_timestep_s: Optional[float] = None,
    solver: Union[None, str, LinearSolver] = None,
) -> TransientResult:
    """Run a transient analysis (fixed-step by default, adaptive on request).

    Delegates to the circuit's cached :class:`~repro.spice.engine.AnalysisEngine`,
    which starts from a DC operating point at ``t = 0`` (all capacitors open)
    and then marches forward in time, re-solving the nonlinear system at
    every step by Newton iteration with the capacitor companion models of
    the selected integration method.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time_s / timestep_s:
        Simulation span and step size (the fixed step, or the adaptive
        controller's initial step).
    integration:
        ``"be"`` (backward Euler, default — very robust) or ``"trap"``
        (trapezoidal, second order).
    max_newton_iterations / tolerance_v:
        Per-step Newton controls.
    gmin:
        Node-to-ground minimum conductance.
    use_initial_conditions:
        When True the analysis starts from all-zero node voltages (plus the
        capacitor initial conditions) instead of the DC operating point at
        ``t = 0`` — the equivalent of SPICE's ``UIC``.
    adaptive / lte_tolerance_v / min_timestep_s / max_timestep_s:
        Step-size controller: with ``adaptive=True`` each step's local
        truncation error is estimated and the step accepted/rejected
        against ``lte_tolerance_v``, with the step clamped to
        ``[min_timestep_s, max_timestep_s]`` (defaults ``timestep_s / 64``
        and ``timestep_s * 64``).  Stimulus-waveform breakpoints are never
        stepped over.
    solver:
        Linear-solver backend for the per-step Newton solves (a name such
        as ``"sparse"`` or a :class:`~repro.spice.solvers.LinearSolver`
        instance; the engine default when omitted).

    .. deprecated::
        Build a :class:`repro.api.Transient` spec and run it through
        :meth:`repro.api.Session.run` instead (see the README migration
        table); this wrapper remains for compatibility and will keep
        delegating to the engine.
    """
    import warnings

    warnings.warn(
        "transient_analysis() is deprecated: build a repro.api.Transient spec "
        "and run it through repro.api.Session.run() (see the README migration "
        "table)",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_engine(circuit).solve_transient(
        stop_time_s,
        timestep_s,
        integration=integration,
        max_newton_iterations=max_newton_iterations,
        tolerance_v=tolerance_v,
        gmin=gmin,
        use_initial_conditions=use_initial_conditions,
        adaptive=adaptive,
        lte_tolerance_v=lte_tolerance_v,
        min_timestep_s=min_timestep_s,
        max_timestep_s=max_timestep_s,
        solver=solver,
    )
