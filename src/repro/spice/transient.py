"""Transient analysis with backward-Euler or trapezoidal integration.

The analysis starts from a DC operating point at ``t = 0`` (all capacitors
open) and then marches with a fixed timestep; at every step the nonlinear
system is re-solved by Newton iteration with the capacitor companion models
of the selected integration method.  Fixed stepping is entirely adequate for
the paper's circuits, whose time constants are set by the 500 kOhm pull-up
and femto-farad load capacitors (tens of nanoseconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.spice.dcop import dc_operating_point
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource
from repro.spice.netlist import AnalysisState, Circuit


@dataclass
class TransientResult:
    """Waveforms produced by a transient analysis.

    Attributes
    ----------
    circuit:
        The analysed circuit.
    time_s:
        Time points (including t = 0).
    solutions:
        Matrix of MNA solutions, one row per time point.
    converged:
        False if any time step failed to converge (the run still completes).
    """

    circuit: Circuit
    time_s: np.ndarray
    solutions: np.ndarray
    converged: bool

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveform of a named node [V] (zeros for ground)."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros_like(self.time_s)
        return self.solutions[:, index]

    def source_current(self, source_name: str) -> np.ndarray:
        """Current waveform through a voltage source [A]."""
        source = self.circuit.element(source_name)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects the name of a VoltageSource")
        return self.solutions[:, source.branch_position(self.circuit)]

    def sample_voltage(self, node_name: str, time_s: float) -> float:
        """Node voltage interpolated at an arbitrary time."""
        return float(np.interp(time_s, self.time_s, self.voltage(node_name)))

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the final time point."""
        return {
            name: float(self.solutions[-1, self.circuit.node_index(name)])
            for name in self.circuit.node_names
        }


def transient_analysis(
    circuit: Circuit,
    stop_time_s: float,
    timestep_s: float,
    integration: str = "be",
    max_newton_iterations: int = 100,
    tolerance_v: float = 1e-6,
    gmin: float = 1e-9,
    use_initial_conditions: bool = False,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time_s / timestep_s:
        Simulation span and fixed step.
    integration:
        ``"be"`` (backward Euler, default — very robust) or ``"trap"``
        (trapezoidal, second order).
    max_newton_iterations / tolerance_v:
        Per-step Newton controls.
    gmin:
        Node-to-ground minimum conductance.
    use_initial_conditions:
        When True the analysis starts from all-zero node voltages (plus the
        capacitor initial conditions) instead of the DC operating point at
        ``t = 0`` — the equivalent of SPICE's ``UIC``.
    """
    if stop_time_s <= 0.0 or timestep_s <= 0.0:
        raise ValueError("stop time and timestep must be positive")
    if timestep_s > stop_time_s:
        raise ValueError("the timestep cannot exceed the stop time")
    if integration not in ("be", "trap"):
        raise ValueError("integration must be 'be' or 'trap'")

    capacitors = [element for element in circuit.elements if isinstance(element, Capacitor)]
    for capacitor in capacitors:
        capacitor.reset()

    steps = int(round(stop_time_s / timestep_s))
    times = np.linspace(0.0, steps * timestep_s, steps + 1)

    if use_initial_conditions:
        current_solution = circuit.initial_solution()
    else:
        initial_point = dc_operating_point(circuit, gmin=gmin, time_s=0.0)
        current_solution = initial_point.solution.copy()

    solutions = np.zeros((steps + 1, circuit.system_size))
    solutions[0] = current_solution
    all_converged = True

    previous_solution = current_solution.copy()
    for step in range(1, steps + 1):
        time = times[step]
        solution = current_solution.copy()
        converged = False
        for _ in range(max_newton_iterations):
            state = AnalysisState(
                solution=solution,
                time_s=time,
                timestep_s=timestep_s,
                previous_solution=previous_solution,
                integration=integration,
                gmin=gmin,
            )
            system = circuit.assemble(state)
            new_solution = np.linalg.solve(system.matrix, system.rhs)
            update = new_solution - solution
            max_update = float(np.max(np.abs(update))) if update.size else 0.0
            update = np.clip(update, -1.0, 1.0)
            solution = solution + update
            if max_update < tolerance_v:
                converged = True
                break
        if not converged:
            all_converged = False

        final_state = AnalysisState(
            solution=solution,
            time_s=time,
            timestep_s=timestep_s,
            previous_solution=previous_solution,
            integration=integration,
            gmin=gmin,
        )
        for capacitor in capacitors:
            capacitor.update_history(final_state)

        solutions[step] = solution
        previous_solution = solution.copy()
        current_solution = solution

    return TransientResult(
        circuit=circuit,
        time_s=times,
        solutions=solutions,
        converged=all_converged,
    )
