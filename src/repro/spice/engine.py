"""The unified analysis engine: compiled sparse stamping and batched sweeps.

All analyses (DC operating point, DC sweeps, transient) run through one
:class:`AnalysisEngine`, which owns the Newton-Raphson loop and its
convergence fallbacks (gmin stepping, source stepping).  The engine compiles
a :class:`~repro.spice.netlist.Circuit` once into per-element-class index
arrays (:class:`CompiledCircuit`) so each Newton iteration assembles the
Jacobian and right-hand side with vectorized ``np.add.at`` scatter instead of
per-element Python ``stamp()`` calls.

Compilation notes
-----------------
* **Ghost row/column.**  The assembly arrays carry one extra trailing row,
  column and solution slot for the ground node.  Node index ``-1`` (ground)
  then addresses the ghost slot through ordinary NumPy indexing, so stamps
  and gathers need no per-entry ground checks; the ghost row/column is simply
  dropped before the linear solve.
* **Static stamps.**  Resistor conductances and the structural +/-1 entries
  of voltage-source branches never change, so they are accumulated into a
  base matrix once per ``(gmin, timestep, integration)`` context; capacitor
  companion conductances join them during transient analysis.  Each Newton
  iteration copies the base and adds only the nonlinear (MOSFET) stamps.
* **Compatibility path.**  Elements whose exact type the compiler does not
  recognize (including subclasses of the built-in elements that override
  ``stamp()``) keep working: their ``stamp()`` is called per iteration
  against an :class:`~repro.spice.netlist.MNASystem` view of the engine's
  assembly buffers.
* **Invalidation.**  The compiled structure caches the circuit's
  :attr:`~repro.spice.netlist.Circuit.revision` and recompiles transparently
  when elements or nodes are added.

Use :func:`get_engine` to obtain the engine cached on a circuit; the
``dc_operating_point`` / ``dc_sweep`` / ``transient_analysis`` frontends are
thin wrappers over it and remain the stable public API.

Solver seam
-----------
The final linear solve of every Newton iteration goes through a pluggable
:class:`~repro.spice.solvers.LinearSolver` backend (dense LAPACK by default,
sparse SuperLU for large lattices, a batched dense backend for stacked
Monte-Carlo trials).  Every analysis accepts ``solver=`` (a backend name or
instance); see :mod:`repro.spice.solvers`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.spice.netlist import AnalysisState, Circuit, MNASystem
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import MOSFET
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.sources import CurrentSource, VoltageSource
from repro.spice.solvers import FactorizationCache, LinearSolver, get_solver

#: gmin ladder of the gmin-stepping fallback (relaxed decade by decade).
GMIN_LADDER: Tuple[float, ...] = (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8)

#: Source scale ladder of the source-stepping fallback (ramped to full drive).
SOURCE_LADDER: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0)

#: Stall threshold of the modified-Newton bypass (``newton="reuse"``): a
#: bypass round that shrinks the Newton update by less than this factor —
#: while the update is still above tolerance — has stopped contracting
#: usefully, and the next round refactors at the current iterate.  0.95
#: tolerates the slow-but-steady linear contraction a frozen Jacobian
#: typically produces near convergence (tighter thresholds flip-flop:
#: refactor, one good quadratic round, freeze, "stall", refactor ...).
REUSE_STALL_CONTRACTION = 0.95

#: Engagement threshold of the modified-Newton bypass: the frozen LU is
#: only worth stepping through once the iterate is already moving in small
#: steps — within the voltage scale over which the device conductances
#: stay roughly constant (a fraction of Vth).  While the previous round's
#: update is larger, the Jacobian changes too fast for the bypass to
#: contract and reuse mode refactors every round, exactly like full
#: Newton — without the gate a cold start thrashes (bypass, stall,
#: refactor) and ends up *slower* than the default path.
REUSE_ENGAGE_V = 0.05


def _wants_newton_reuse(newton: Optional[str]) -> bool:
    """Validate a ``newton=`` knob; True when the reuse mode is requested."""
    if newton not in (None, "full", "reuse"):
        raise ValueError(f"newton must be None, 'full' or 'reuse', got {newton!r}")
    return newton == "reuse"


class _NewtonReuseState:
    """Mutable carrier of one Newton march's frozen factorization.

    ``newton="reuse"`` keeps the last LU across Newton rounds (and, for a
    transient march, across timesteps): a bitwise-unchanged Jacobian solves
    through it directly (bit-identical to refactorizing), a changed one
    takes a modified-Newton bypass step through it until :meth:`observe`
    detects a contraction stall, which marks the handle stale so the next
    round refactors at the current iterate.
    """

    __slots__ = ("handle", "stale", "prev_max_update")

    def __init__(self):
        self.handle = None
        self.stale = False
        self.prev_max_update: Optional[float] = None

    def invalidate(self) -> None:
        """Drop the handle entirely (singular factorization, hard reset)."""
        self.handle = None
        self.stale = False
        self.prev_max_update = None

    def freeze(self, handle) -> None:
        """Adopt a fresh factorization as the new frozen Jacobian."""
        self.handle = handle
        self.stale = False
        self.prev_max_update = None

    def engaged(self) -> bool:
        """Whether the bypass is worth attempting at the current iterate.

        True once the previous round's update is small enough
        (:data:`REUSE_ENGAGE_V`) that the Jacobian is roughly constant
        between rounds; until then every round refactors, matching full
        Newton step for step.
        """
        prev = self.prev_max_update
        return prev is not None and np.isfinite(prev) and prev <= REUSE_ENGAGE_V

    def observe(self, bypassed: bool, max_update: float, tolerance_v: float) -> None:
        """Track the contraction rate; mark the handle stale on a stall."""
        if bypassed and (
            not np.isfinite(max_update)
            or (
                self.prev_max_update is not None
                and max_update >= REUSE_STALL_CONTRACTION * self.prev_max_update
                and max_update >= tolerance_v
            )
        ):
            self.stale = True
        self.prev_max_update = max_update

#: Parameter vectors a compiled-circuit overlay may replace (one value per
#: element of the corresponding class; the two ``*_scale`` vectors multiply
#: the independent-source waveform values instead of replacing them).
PERTURBABLE_PARAMETERS: Tuple[str, ...] = (
    "mos_vth",
    "mos_beta",
    "mos_lambda",
    "resistor_ohm",
    "cap_c",
    "vsource_scale",
    "isource_scale",
)


def _same_optional(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
    """Equality over optional arrays (``None`` meaning the all-ones default)."""
    if a is None or b is None:
        return a is None and b is None
    return np.array_equal(a, b)


class SparsityPattern:
    """The CSC structure shared by every assembly of one compiled topology.

    Walks the compiled index arrays once and records every matrix entry any
    compiled stamp can touch — the node diagonal (gmin), the static resistor
    and voltage-source-branch entries, the capacitor companion entries and
    the MOSFET conductance positions of *both* channel orientations — as a
    canonical (column-major, deduplicated) CSC pattern.  On top of the raw
    structure (:attr:`indices`/:attr:`indptr`) it precomputes the CSC data
    position of each stamp group, so :meth:`CompiledCircuit.assemble_sparse`
    scatters values straight into a ``(nnz,)`` data array with no dense
    intermediate and no per-iteration structure analysis.

    Ghost (ground) entries map to a trash slot at position :attr:`nnz`; the
    assembly routines allocate data arrays of length ``nnz + 1`` and return
    the ``[:nnz]`` prefix, mirroring how the dense path trims the ghost
    row/column before the solve.
    """

    def __init__(self, compiled: "CompiledCircuit"):
        size = compiled.size
        self.size = size
        diag = np.arange(size)
        rows = [diag, compiled._static_rows, compiled._static_cols]
        cols = [diag, compiled._static_cols, compiled._static_rows]
        if compiled.num_capacitors:
            a, b = compiled.cap_a, compiled.cap_b
            rows.append(np.concatenate((a, b, a, b)))
            cols.append(np.concatenate((a, b, b, a)))
        if compiled.num_mosfets:
            d, g, s = compiled.mos_d, compiled.mos_g, compiled.mos_s
            rows.append(np.concatenate((d, s, d, s, d, s)))
            cols.append(np.concatenate((d, s, s, d, g, g)))
        all_rows = np.concatenate(rows).astype(np.int64)
        all_cols = np.concatenate(cols).astype(np.int64)
        keep = (all_rows < size) & (all_cols < size)
        all_rows, all_cols = all_rows[keep], all_cols[keep]
        order = np.lexsort((all_rows, all_cols))
        all_rows, all_cols = all_rows[order], all_cols[order]
        unique = np.ones(all_rows.size, dtype=bool)
        unique[1:] = (all_rows[1:] != all_rows[:-1]) | (all_cols[1:] != all_cols[:-1])
        #: COO view of the pattern (also the gather indices for turning a
        #: dense assembled matrix into this pattern's data array).
        self.rows = all_rows[unique]
        self.cols = all_cols[unique]
        self.nnz = int(self.rows.size)
        #: CSC structure, int32 so SuperLU takes it without a per-solve cast.
        self.indices = self.rows.astype(np.int32)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.cols, minlength=size), out=indptr[1:])
        self.indptr = indptr.astype(np.int32)
        self._keys = self.cols * size + self.rows  # ascending by construction

        # Per-stamp-group position maps into the CSC data array.
        self.static_pos = self.positions(compiled._static_rows, compiled._static_cols)
        node_diag = np.arange(compiled.num_nodes)
        self.gmin_diag_pos = self.positions(node_diag, node_diag)
        if compiled.num_capacitors:
            a, b = compiled.cap_a, compiled.cap_b
            self.cap_pos = self.positions(
                np.concatenate((a, b, a, b)), np.concatenate((a, b, b, a))
            )
        else:
            self.cap_pos = None
        if compiled.num_mosfets:
            d, g, s = compiled.mos_d, compiled.mos_g, compiled.mos_s
            # The channel orientation (which diffusion terminal acts as the
            # drain) is decided per device per Newton iterate, so both
            # orientations' eight stamp positions are precomputed and the
            # assembly selects rows with np.where(forward, ...).
            self.mos_pos_forward = self._mos_positions(d, s, g)
            self.mos_pos_reverse = self._mos_positions(s, d, g)
        else:
            self.mos_pos_forward = None
            self.mos_pos_reverse = None

    def _mos_positions(self, drain: np.ndarray, source: np.ndarray, gate: np.ndarray) -> np.ndarray:
        """``(8, M)`` data positions of one orientation's stamp entries."""
        rows8 = np.stack((drain, source, drain, source, drain, drain, source, source))
        cols8 = np.stack((drain, source, source, drain, gate, source, gate, source))
        return self.positions(rows8, cols8)

    def positions(self, rows, cols) -> np.ndarray:
        """CSC data positions of ``(rows, cols)`` entries.

        Ghost (ground) entries map to the trash slot ``nnz``; a non-ghost
        entry missing from the pattern raises — that would mean the pattern
        no longer covers the compiled stamps.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        ghost = (rows >= self.size) | (cols >= self.size)
        keys = cols * self.size + rows
        pos = np.searchsorted(self._keys, keys)
        pos = np.where(ghost, self.nnz, pos)
        clipped = np.minimum(pos, self.nnz - 1) if self.nnz else pos
        hit = ghost | ((pos < self.nnz) & (self._keys[clipped] == keys))
        if not bool(np.all(hit)):
            raise RuntimeError(
                "sparsity pattern does not cover a compiled stamp entry; "
                "the compiled structure changed without a recompile"
            )
        return pos


class CompiledCircuit:
    """Precomputed index arrays for vectorized MNA assembly.

    Walks the circuit's elements once, grouping them by exact type:

    * resistors and voltage-source branch structure become a static COO
      triplet folded into cached base matrices;
    * capacitors become index/value arrays for companion-model stamping;
    * MOSFETs become terminal-index and parameter arrays evaluated with the
      vectorized level-1 model of :func:`repro.spice.elements.mosfet.evaluate_level1_arrays`;
    * independent sources become row/node arrays plus waveform references
      (re-read on every assembly, so ``set_level`` during sweeps is honoured);
    * everything else falls back to the per-element ``stamp()`` path.
    """

    #: Dense base matrices retained per (gmin, timestep, integration)
    #: context; LRU-bounded so gmin/timestep studies on large circuits do
    #: not accumulate O(size^2) memory per visited context.
    BASE_CACHE_LIMIT = 8

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.revision = circuit.revision
        self.num_nodes = circuit.num_nodes
        self.size = circuit.system_size
        ghost = self.size + 1

        resistors: List[Resistor] = []
        capacitors: List[Capacitor] = []
        mosfets: List[MOSFET] = []
        self.voltage_sources: List[VoltageSource] = []
        self.current_sources: List[CurrentSource] = []
        self.custom_elements: List[object] = []
        for element in circuit.elements:
            kind = type(element)
            if kind is Resistor:
                resistors.append(element)
            elif kind is Capacitor:
                capacitors.append(element)
            elif kind is MOSFET:
                mosfets.append(element)
            elif kind is VoltageSource:
                self.voltage_sources.append(element)
            elif kind is CurrentSource:
                self.current_sources.append(element)
            else:
                self.custom_elements.append(element)

        # All compiled node indices are stored with ground (-1) remapped to
        # the ghost slot ``size``, so gathers and flat-index scatters need no
        # special-casing (the ghost row/column is trimmed before the solve).
        def gi(index: int) -> int:
            return index if index >= 0 else self.size

        # Static stamps: resistor conductances + voltage-source branch rows.
        self.resistors = resistors
        self.mosfets = mosfets
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for resistor in resistors:
            a, b, g = gi(resistor._node_a), gi(resistor._node_b), resistor.conductance
            rows += [a, b, a, b]
            cols += [a, b, b, a]
            vals += [g, g, -g, -g]
        self.vs_rows = np.array(
            [self.num_nodes + source._branch for source in self.voltage_sources], dtype=int
        )
        for source, row in zip(self.voltage_sources, self.vs_rows):
            plus, minus = gi(source._node_plus), gi(source._node_minus)
            rows += [row, plus, row, minus]
            cols += [plus, row, minus, row]
            vals += [1.0, 1.0, -1.0, -1.0]
        self._static_rows = np.array(rows, dtype=int)
        self._static_cols = np.array(cols, dtype=int)
        self._static_vals = np.array(vals, dtype=float)

        self.is_plus = np.array([gi(s._node_plus) for s in self.current_sources], dtype=int)
        self.is_minus = np.array([gi(s._node_minus) for s in self.current_sources], dtype=int)

        self.capacitors = capacitors
        self.cap_a = np.array([gi(c._node_a) for c in capacitors], dtype=int)
        self.cap_b = np.array([gi(c._node_b) for c in capacitors], dtype=int)
        self.cap_c = np.array([c.capacitance_f for c in capacitors], dtype=float)
        self.cap_v0 = np.array([c.initial_voltage_v for c in capacitors], dtype=float)

        self.mos_d = np.array([gi(m._drain) for m in mosfets], dtype=int)
        self.mos_g = np.array([gi(m._gate) for m in mosfets], dtype=int)
        self.mos_s = np.array([gi(m._source) for m in mosfets], dtype=int)
        self.mos_beta = np.array([m.parameters.beta for m in mosfets], dtype=float)
        self.mos_vth = np.array([m.parameters.vth_v for m in mosfets], dtype=float)
        self.mos_lambda = np.array([m.parameters.lambda_per_v for m in mosfets], dtype=float)
        self.mos_gmin = np.array([m.CHANNEL_GMIN for m in mosfets], dtype=float)
        self.mos_w = np.array([m.SMOOTHING_V for m in mosfets], dtype=float)

        self.num_mosfets = len(mosfets)
        self.num_capacitors = len(capacitors)
        self._ghost = ghost
        self._base_cache: Dict[Hashable, np.ndarray] = {}
        self._base_data_cache: Dict[Hashable, np.ndarray] = {}
        #: Preallocated per-round scratch buffers of the batched assemblies
        #: (see :meth:`_workspace`); keyed by buffer role.
        self._workspaces: Dict[str, np.ndarray] = {}
        self._pattern: Optional[SparsityPattern] = None
        self._source_value_cache = None
        #: Per-source waveform multipliers (``None`` means all-ones).
        self.vs_scale: Optional[np.ndarray] = None
        self.is_scale: Optional[np.ndarray] = None
        self._overlay: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # parameter overlays (Monte Carlo / corner analysis)
    # ------------------------------------------------------------------ #

    def _parameter_lengths(self) -> Dict[str, int]:
        return {
            "mos_vth": self.num_mosfets,
            "mos_beta": self.num_mosfets,
            "mos_lambda": self.num_mosfets,
            "resistor_ohm": len(self.resistors),
            "cap_c": self.num_capacitors,
            "vsource_scale": len(self.voltage_sources),
            "isource_scale": len(self.current_sources),
        }

    def nominal_parameters(self) -> Dict[str, np.ndarray]:
        """The element-derived nominal value of every perturbable vector.

        Monte-Carlo samplers perturb around these; the arrays are fresh
        copies, so mutating them never touches the compiled state.
        """
        return {
            "mos_vth": np.array([m.parameters.vth_v for m in self.mosfets], dtype=float),
            "mos_beta": np.array([m.parameters.beta for m in self.mosfets], dtype=float),
            "mos_lambda": np.array(
                [m.parameters.lambda_per_v for m in self.mosfets], dtype=float
            ),
            "resistor_ohm": np.array(
                [r.resistance_ohm for r in self.resistors], dtype=float
            ),
            "cap_c": np.array([c.capacitance_f for c in self.capacitors], dtype=float),
            "vsource_scale": np.ones(len(self.voltage_sources)),
            "isource_scale": np.ones(len(self.current_sources)),
        }

    def set_parameter_overlay(self, overlay: Mapping[str, Sequence[float]]) -> None:
        """Replace compiled parameter vectors without touching the elements.

        ``overlay`` maps names from :data:`PERTURBABLE_PARAMETERS` to one
        value per element of that class.  The overlay persists across
        :meth:`refresh_values` (so it survives the per-solve refresh of the
        analyses) until :meth:`clear_parameter_overlay` restores the
        element-derived nominals.  This is the Monte-Carlo fast path: a
        trial swaps parameter arrays in place instead of re-walking the
        netlist or mutating element objects.
        """
        lengths = self._parameter_lengths()
        cleaned: Dict[str, np.ndarray] = {}
        for name, values in overlay.items():
            if name not in lengths:
                raise ValueError(
                    f"unknown parameter {name!r}; expected one of {PERTURBABLE_PARAMETERS}"
                )
            array = np.array(values, dtype=float)
            if array.shape != (lengths[name],):
                raise ValueError(
                    f"{name!r} overlay has shape {array.shape}, expected ({lengths[name]},)"
                )
            if name == "resistor_ohm" and np.any(array <= 0.0):
                raise ValueError("resistor_ohm overlay values must be positive")
            if name == "cap_c" and np.any(array < 0.0):
                raise ValueError("cap_c overlay values must be non-negative")
            cleaned[name] = array
        self._overlay = cleaned or None
        self.refresh_values()

    def clear_parameter_overlay(self) -> None:
        """Drop the active overlay and restore element-derived values."""
        if self._overlay is not None:
            self._overlay = None
            self.refresh_values()

    def __getstate__(self):
        # The base-matrix LRU and the source-value memo are lazily rebuilt
        # and can hold O(size^2) dense matrices; shipping them to process-
        # pool workers is pure dead weight, so pickling drops them.
        state = self.__dict__.copy()
        state["_base_cache"] = {}
        state["_base_data_cache"] = {}
        state["_pattern"] = None
        state["_source_value_cache"] = None
        state["_workspaces"] = {}
        return state

    def _workspace(self, name: str, rows: int, cols: int, zero: bool = False) -> np.ndarray:
        """A reusable ``(rows, cols)`` scratch view for the batched hot path.

        The batched Newton loop re-assembles the stack every round; these
        capacity-grown buffers kill the per-round allocation churn.  The
        returned view is only valid until the next call with the same
        ``name`` — callers that hand buffers to the outside world (the
        public assembly entry points) must opt in explicitly.
        """
        buffer = self._workspaces.get(name)
        if buffer is None or buffer.shape[0] < rows or buffer.shape[1] != cols:
            capacity = rows
            if buffer is not None and buffer.shape[1] == cols:
                capacity = max(rows, buffer.shape[0])
            buffer = np.empty((capacity, cols))
            self._workspaces[name] = buffer
        view = buffer[:rows]
        if zero:
            view.fill(0.0)
        return view

    def refresh_values(self) -> None:
        """Re-read element *values* without recompiling the structure.

        The compiled arrays snapshot element parameters (conductances,
        capacitances, MOSFET parameter sets); topology changes are caught
        through the circuit revision, but in-place parameter mutation (e.g.
        ``resistor.resistance_ohm = ...`` between runs) is not.  The
        analyses therefore call this once per solve: it rebuilds the value
        arrays (cheap — a few reads per element) and drops the cached base
        matrices only when something actually changed.  An active parameter
        overlay (:meth:`set_parameter_overlay`) takes precedence over the
        element values it covers, so Monte-Carlo trials survive the refresh.
        """
        overlay = self._overlay or {}
        if self.resistors:
            resistance = overlay.get("resistor_ohm")
            if resistance is not None:
                conductances = 1.0 / resistance
            else:
                conductances = np.array(
                    [r.conductance for r in self.resistors], dtype=float
                )
            n4 = 4 * len(self.resistors)
            new_vals = np.empty(n4)
            new_vals[0::4] = conductances
            new_vals[1::4] = conductances
            new_vals[2::4] = -conductances
            new_vals[3::4] = -conductances
            if not np.array_equal(new_vals, self._static_vals[:n4]):
                self._static_vals = np.concatenate((new_vals, self._static_vals[n4:]))
                self._base_cache.clear()
                self._base_data_cache.clear()
        if self.capacitors:
            new_c = overlay.get("cap_c")
            if new_c is None:
                new_c = np.array([c.capacitance_f for c in self.capacitors], dtype=float)
            if not np.array_equal(new_c, self.cap_c):
                self.cap_c = new_c
                self._base_cache.clear()
                self._base_data_cache.clear()
            if not overlay:
                self.cap_v0 = np.array(
                    [c.initial_voltage_v for c in self.capacitors], dtype=float
                )
        if self.mosfets:
            beta = overlay.get("mos_beta")
            vth = overlay.get("mos_vth")
            lam = overlay.get("mos_lambda")
            self.mos_beta = (
                beta
                if beta is not None
                else np.array([m.parameters.beta for m in self.mosfets], dtype=float)
            )
            self.mos_vth = (
                vth
                if vth is not None
                else np.array([m.parameters.vth_v for m in self.mosfets], dtype=float)
            )
            self.mos_lambda = (
                lam
                if lam is not None
                else np.array(
                    [m.parameters.lambda_per_v for m in self.mosfets], dtype=float
                )
            )
            if not overlay:
                # gmin/smoothing (and cap_v0 above) are not perturbable, so
                # the per-trial overlay refresh — the Monte-Carlo hot path —
                # skips their per-element Python walks; nominal refreshes
                # keep honouring in-place element mutation as before.
                self.mos_gmin = np.array(
                    [m.CHANNEL_GMIN for m in self.mosfets], dtype=float
                )
                self.mos_w = np.array([m.SMOOTHING_V for m in self.mosfets], dtype=float)
        vs_scale = overlay.get("vsource_scale")
        is_scale = overlay.get("isource_scale")
        if not _same_optional(vs_scale, self.vs_scale) or not _same_optional(
            is_scale, self.is_scale
        ):
            self.vs_scale = vs_scale
            self.is_scale = is_scale
            self._source_value_cache = None

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #

    def _capacitor_conductance(self, timestep_s: float, integration: str) -> np.ndarray:
        factor = 2.0 if integration == "trap" else 1.0
        return factor * self.cap_c / timestep_s

    def _capacitor_conductance_stacked(
        self, cap_c: np.ndarray, timestep_s: float, integration: str
    ) -> np.ndarray:
        """Per-trial companion conductances for a ``(trials, C)`` cap_c stack.

        The elementwise arithmetic is :meth:`_capacitor_conductance`'s, so
        a trial's conductances are bit-identical to a serial assembly with
        that trial's cap_c overlay.
        """
        factor = 2.0 if integration == "trap" else 1.0
        return factor * np.asarray(cap_c, dtype=float) / timestep_s

    def _base_matrix(
        self,
        gmin: float,
        timestep_s: Optional[float],
        integration: str,
        cache: bool = True,
    ) -> np.ndarray:
        """The cached linear part of the Jacobian for one analysis context.

        ``cache=False`` builds the base without retaining it — used for the
        one-off bumped-gmin retries after a singular solve, which would
        otherwise grow the cache with matrices that are never reused.
        """
        key = (gmin, timestep_s, integration if timestep_s is not None else "dc")
        base = self._base_cache.get(key)
        if base is not None:
            # LRU touch: re-insert so timestep/gmin studies evict the
            # least-recently-used context first.
            self._base_cache.pop(key)
            self._base_cache[key] = base
        else:
            base = np.zeros((self._ghost, self._ghost))
            if self._static_rows.size:
                np.add.at(base, (self._static_rows, self._static_cols), self._static_vals)
            node_diag = np.arange(self.num_nodes)
            base[node_diag, node_diag] += gmin
            if timestep_s is not None and self.num_capacitors:
                g = self._capacitor_conductance(timestep_s, integration)
                np.add.at(
                    base,
                    (
                        np.concatenate((self.cap_a, self.cap_b, self.cap_a, self.cap_b)),
                        np.concatenate((self.cap_a, self.cap_b, self.cap_b, self.cap_a)),
                    ),
                    np.concatenate((g, g, -g, -g)),
                )
            if cache:
                if len(self._base_cache) >= self.BASE_CACHE_LIMIT:
                    self._base_cache.pop(next(iter(self._base_cache)))
                self._base_cache[key] = base
        return base

    def sparsity_pattern(self) -> Optional["SparsityPattern"]:
        """The shared CSC pattern of this topology, built once and cached.

        ``None`` for circuits with custom (compatibility-path) elements —
        their ``stamp()`` can touch arbitrary entries, so no static pattern
        is safe and the sparse assembly path is unavailable.
        """
        if self.custom_elements:
            return None
        if self._pattern is None:
            self._pattern = SparsityPattern(self)
        return self._pattern

    def _base_data(
        self,
        gmin: float,
        timestep_s: Optional[float],
        integration: str,
        cache: bool = True,
    ) -> np.ndarray:
        """The cached linear part of the Jacobian as CSC pattern data.

        The sparse twin of :meth:`_base_matrix`: a ``(nnz + 1,)`` array
        (trailing trash slot for ghost entries) whose stamp accumulation
        order — static entries, then the gmin diagonal, then the capacitor
        companions — mirrors the dense base matrix operation for operation,
        so each entry is bit-identical to the dense base gathered at the
        pattern's (row, col) position.
        """
        pattern = self.sparsity_pattern()
        key = (gmin, timestep_s, integration if timestep_s is not None else "dc")
        data = self._base_data_cache.get(key)
        if data is not None:
            self._base_data_cache.pop(key)
            self._base_data_cache[key] = data
        else:
            data = np.zeros(pattern.nnz + 1)
            if self._static_rows.size:
                np.add.at(data, pattern.static_pos, self._static_vals)
            data[pattern.gmin_diag_pos] += gmin
            if timestep_s is not None and self.num_capacitors:
                g = self._capacitor_conductance(timestep_s, integration)
                np.add.at(data, pattern.cap_pos, np.concatenate((g, g, -g, -g)))
            data[pattern.nnz] = 0.0
            if cache:
                if len(self._base_data_cache) >= self.BASE_CACHE_LIMIT:
                    self._base_data_cache.pop(next(iter(self._base_data_cache)))
                self._base_data_cache[key] = data
        return data

    def _source_values(
        self, time_s: float, source_scale: float
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Scaled independent-source values at ``time_s`` (memoized).

        Source values are constant across the Newton iterations of one
        solve, so re-evaluating the waveforms per assembly is pure overhead.
        The memo is keyed on the time, the scale and the *identity* of every
        waveform object (strong references held in the cache, so a swapped
        waveform — e.g. ``set_level`` between sweep points — can never alias
        a freed object's id and serve stale values).
        """
        if not self.voltage_sources and not self.current_sources:
            return None, None
        v_waveforms = [s.waveform for s in self.voltage_sources]
        i_waveforms = [s.waveform for s in self.current_sources]
        cache = self._source_value_cache
        if (
            cache is not None
            and cache[0] == time_s
            and cache[1] == source_scale
            and all(a is b for a, b in zip(cache[2], v_waveforms))
            and all(a is b for a, b in zip(cache[3], i_waveforms))
        ):
            return cache[4], cache[5]
        v_values = (
            source_scale
            * np.fromiter(
                (w.value(time_s) for w in v_waveforms),
                dtype=float,
                count=len(v_waveforms),
            )
            if v_waveforms
            else None
        )
        if v_values is not None and self.vs_scale is not None:
            v_values = v_values * self.vs_scale
        i_values = (
            source_scale
            * np.fromiter(
                (w.value(time_s) for w in i_waveforms),
                dtype=float,
                count=len(i_waveforms),
            )
            if i_waveforms
            else None
        )
        if i_values is not None and self.is_scale is not None:
            i_values = i_values * self.is_scale
        self._source_value_cache = (
            time_s,
            source_scale,
            v_waveforms,
            i_waveforms,
            v_values,
            i_values,
        )
        return v_values, i_values

    def _pad(self, vector: np.ndarray) -> np.ndarray:
        """Append the ghost (ground) slot so index -1 gathers 0."""
        padded = np.empty(self.size + 1)
        padded[: self.size] = vector
        padded[self.size] = 0.0
        return padded

    def assemble(
        self,
        state: AnalysisState,
        source_scale: float = 1.0,
        cap_history: Optional[np.ndarray] = None,
        cache_base: bool = True,
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = None,
        cap_g: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the linearized system at ``state``.

        Returns views of the matrix and right-hand side with the ghost
        row/column already trimmed, ready for ``np.linalg.solve``.

        ``source_scale`` scales every independent source (used by the
        source-stepping fallback).  ``cap_history`` supplies the trapezoidal
        capacitor history currents; when omitted they are read from the
        elements, matching the legacy stamp path.

        ``source_values`` and ``cap_g`` let the Newton loop hand in the
        per-solve invariants — the scaled independent-source values at
        ``state.time_s`` and the capacitor companion conductances — computed
        once per solve instead of once per iteration; when omitted they are
        derived here as before (identical values either way).
        """
        matrix = self._base_matrix(
            state.gmin, state.timestep_s, state.integration, cache=cache_base
        ).copy()
        rhs = self._linear_rhs(state, source_scale, cap_history, source_values, cap_g)

        if self.num_mosfets:
            self._stamp_mosfets(matrix, rhs, self._pad(state.solution))

        if self.custom_elements:
            system = MNASystem(
                self.num_nodes,
                self.size - self.num_nodes,
                matrix=matrix[: self.size, : self.size],
                rhs=rhs[: self.size],
            )
            for element in self.custom_elements:
                element.stamp(system, state)

        return matrix[: self.size, : self.size], rhs[: self.size]

    def _linear_rhs(
        self,
        state: AnalysisState,
        source_scale: float,
        cap_history: Optional[np.ndarray],
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
        cap_g: Optional[np.ndarray],
    ) -> np.ndarray:
        """The linear right-hand side at ``state`` (sources + cap history).

        Shared by the dense and the sparse serial assembly — everything but
        the MOSFET companion currents, in the serial accumulation order.
        """
        rhs = np.zeros(self._ghost)
        if source_values is None:
            v_values, i_values = self._source_values(state.time_s, source_scale)
        else:
            v_values, i_values = source_values
        if v_values is not None:
            rhs[self.vs_rows] += v_values
        if i_values is not None:
            np.add.at(rhs, self.is_plus, -i_values)
            np.add.at(rhs, self.is_minus, i_values)

        if state.timestep_s is not None and self.num_capacitors:
            g = (
                cap_g
                if cap_g is not None
                else self._capacitor_conductance(state.timestep_s, state.integration)
            )
            if state.previous_solution is not None:
                prev = self._pad(state.previous_solution)
                v_prev = prev[self.cap_a] - prev[self.cap_b]
            else:
                v_prev = self.cap_v0
            i_eq = g * v_prev
            if state.integration == "trap":
                if cap_history is None:
                    cap_history = np.array(
                        [c._previous_current for c in self.capacitors], dtype=float
                    )
                i_eq = i_eq + cap_history
            np.add.at(rhs, self.cap_a, i_eq)
            np.add.at(rhs, self.cap_b, -i_eq)
        return rhs

    def _mosfet_companion(
        self,
        padded: np.ndarray,
        beta: np.ndarray,
        vth: np.ndarray,
        lam: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-device linearized channel quantities at the padded iterate(s).

        ``padded`` is ``(size + 1,)`` serial or ``(trials, size + 1)``
        batched; returns ``(forward, drain, source, gds, gm, i_eq)`` with
        matching leading shape.  Every float operation is shared by all four
        assembly paths, which is what keeps dense/sparse and serial/batched
        results bit-identical.
        """
        from repro.spice.elements.mosfet import evaluate_level1_arrays

        vd = padded[..., self.mos_d]
        vg = padded[..., self.mos_g]
        vs = padded[..., self.mos_s]
        # Orient every channel so its higher diffusion terminal is the drain
        # (the element does the same; the conduction is symmetric).
        forward = vd >= vs
        drain = np.where(forward, self.mos_d, self.mos_s)
        source = np.where(forward, self.mos_s, self.mos_d)
        v_source = np.where(forward, vs, vd)
        vgs = vg - v_source
        vds = np.abs(vd - vs)

        ids, gm, gds = evaluate_level1_arrays(vgs, vds, beta, vth, lam, self.mos_w)
        gds = gds + self.mos_gmin
        i_eq = ids - gm * vgs - gds * vds
        return forward, drain, source, gds, gm, i_eq

    def _stamp_mosfets(self, matrix: np.ndarray, rhs: np.ndarray, solution: np.ndarray) -> None:
        """Vectorized level-1 companion-model stamps for every MOSFET."""
        forward, drain, source, gds, gm, i_eq = self._mosfet_companion(
            solution, self.mos_beta, self.mos_vth, self.mos_lambda
        )
        gate = self.mos_g
        rows = np.concatenate((drain, source, drain, source, drain, drain, source, source))
        cols = np.concatenate((drain, source, source, drain, gate, source, gate, source))
        vals = np.concatenate((gds, gds, -gds, -gds, gm, -gm, -gm, gm))
        # bincount over the raveled matrix is markedly faster than np.add.at
        # for this many entries (duplicates are accumulated either way).
        ghost = self._ghost
        flat = matrix.reshape(-1)
        flat += np.bincount(rows * ghost + cols, weights=vals, minlength=ghost * ghost)
        rhs += np.bincount(
            np.concatenate((drain, source)),
            weights=np.concatenate((-i_eq, i_eq)),
            minlength=ghost,
        )

    # ------------------------------------------------------------------ #
    # sparse assembly (CSC pattern data, no dense intermediate)
    # ------------------------------------------------------------------ #

    def assemble_sparse(
        self,
        state: AnalysisState,
        source_scale: float = 1.0,
        cap_history: Optional[np.ndarray] = None,
        cache_base: bool = True,
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = None,
        cap_g: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the linearized system at ``state`` as CSC pattern data.

        The sparse twin of :meth:`assemble`: element stamps scatter straight
        into the precomputed CSC positions of :meth:`sparsity_pattern`, so no
        ``(n, n)`` matrix is ever formed.  Returns ``(data, rhs)`` where
        ``data`` is the ``(nnz,)`` value array of the pattern — each entry
        bit-identical to the dense assembly gathered at the pattern's
        (row, col) position — and ``rhs`` the ghost-trimmed right-hand side.

        Circuits with custom (compatibility-path) elements are rejected:
        their ``stamp()`` needs the dense matrix view.
        """
        pattern = self.sparsity_pattern()
        if pattern is None:
            raise ValueError(
                "sparse assembly does not support custom (stamp-path) elements; "
                "assemble these circuits densely"
            )
        data = self._base_data(
            state.gmin, state.timestep_s, state.integration, cache=cache_base
        ).copy()
        rhs = self._linear_rhs(state, source_scale, cap_history, source_values, cap_g)

        if self.num_mosfets:
            forward, drain, source, gds, gm, i_eq = self._mosfet_companion(
                self._pad(state.solution), self.mos_beta, self.mos_vth, self.mos_lambda
            )
            pos = np.where(forward, pattern.mos_pos_forward, pattern.mos_pos_reverse)
            vals = np.concatenate((gds, gds, -gds, -gds, gm, -gm, -gm, gm))
            # Same bincount accumulation as the dense stamp — the (8, M)
            # position rows ravel in the dense path's group-major entry
            # order, so shared cells accumulate in the identical sequence.
            data += np.bincount(pos.ravel(), weights=vals, minlength=pattern.nnz + 1)
            rhs += np.bincount(
                np.concatenate((drain, source)),
                weights=np.concatenate((-i_eq, i_eq)),
                minlength=self._ghost,
            )

        return data[: pattern.nnz], rhs[: self.size]

    # ------------------------------------------------------------------ #
    # batched assembly (stacked Monte-Carlo trials)
    # ------------------------------------------------------------------ #

    def assemble_batched(
        self,
        solutions: np.ndarray,
        params: Optional[Mapping[str, np.ndarray]] = None,
        gmin: float = 1e-9,
        time_s: float = 0.0,
        source_scale: float = 1.0,
        timestep_s: Optional[float] = None,
        integration: str = "be",
        previous_solutions: Optional[np.ndarray] = None,
        cap_history: Optional[np.ndarray] = None,
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = None,
        cap_g_rows: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble ``(trials, n, n)`` systems for stacked parameter sets.

        ``solutions`` is the ``(trials, n)`` stack of Newton iterates;
        ``params`` maps perturbable parameter names (see
        :data:`PERTURBABLE_PARAMETERS`) to ``(trials, count)`` stacks — any
        parameter not given uses the compiled (possibly overlaid) value
        vector for every trial.  The per-trial arithmetic mirrors
        :meth:`assemble` operation for operation — including the sequential
        ``np.add.at`` accumulation order of entries that share a matrix
        cell — so a trial's assembled system is bit-identical to a serial
        assembly with the same parameters; this is what makes the batched
        Monte-Carlo path reproduce the per-trial path exactly.

        With ``timestep_s`` set the assembly includes the capacitor
        companion models of the selected ``integration``:
        ``previous_solutions`` is the ``(trials, n)`` stack of the last
        accepted time point (``cap_v0`` when omitted, matching the serial
        path's first-step semantics) and ``cap_history`` the ``(trials,
        num_capacitors)`` trapezoidal history currents.  ``source_values``
        optionally hands in the (already ``source_scale``-scaled) raw
        waveform values so a lockstep march evaluates each waveform once
        per timestep instead of once per Newton round; per-trial
        ``vsource_scale``/``isource_scale`` stacks still compose on top.

        Circuits with custom (compatibility-path) elements are rejected —
        their ``stamp()`` cannot be vectorized across trials.
        """
        if self.custom_elements:
            raise ValueError(
                "batched assembly does not support custom (stamp-path) elements; "
                "run these circuits through the per-trial path"
            )
        params = dict(params or {})
        solutions = self._check_solution_stack(solutions)
        trials = solutions.shape[0]
        ghost = self._ghost
        cells = ghost * ghost
        trial_offsets = np.arange(trials)[:, None]

        # Linear (trial-independent) part first.  When no stack perturbs the
        # static stamps — no resistor_ohm rows, and no cap_c rows if this is
        # a transient assembly — every trial's linear part is exactly the
        # serial cached base matrix, so broadcast-copy it instead of
        # re-accumulating it per round (the lockstep-march fast path).
        resistance = params.get("resistor_ohm")
        cap_c = params.get("cap_c") if timestep_s is not None else None
        cap_g_rows = self._batched_cap_g_rows(
            trials, cap_c, timestep_s, integration, cap_g_rows
        )
        if resistance is None and cap_c is None:
            matrices = np.empty((trials, ghost, ghost))
            matrices[:] = self._base_matrix(gmin, timestep_s, integration)
            flat_all = matrices.reshape(-1)
        else:
            # Static part: resistors + voltage-source branch structure,
            # exactly the accumulation order of the serial base matrix.
            matrices = np.zeros((trials, ghost, ghost))
            flat_all = matrices.reshape(-1)
            static_idx = self._static_rows * ghost + self._static_cols
            if static_idx.size:
                if resistance is None:
                    matrices += np.bincount(
                        static_idx, weights=self._static_vals, minlength=cells
                    ).reshape(ghost, ghost)
                else:
                    conductance = 1.0 / np.asarray(resistance, dtype=float)
                    n4 = 4 * len(self.resistors)
                    vals = np.broadcast_to(
                        self._static_vals, (trials, self._static_vals.size)
                    ).copy()
                    vals[:, 0:n4:4] = conductance
                    vals[:, 1:n4:4] = conductance
                    vals[:, 2:n4:4] = -conductance
                    vals[:, 3:n4:4] = -conductance
                    flat_all += np.bincount(
                        (trial_offsets * cells + static_idx[None, :]).ravel(),
                        weights=vals.ravel(),
                        minlength=trials * cells,
                    )
            node_diag = np.arange(self.num_nodes)
            matrices[:, node_diag, node_diag] += gmin

            # Capacitor companion conductances (transient only), stamped
            # after the gmin diagonal exactly like the serial base matrix.
            # np.add.at (not bincount) because capacitor entries may share
            # cells with the static stamps (a pull-up resistor in parallel
            # with the load capacitor) and the serial path accumulates
            # those sequentially.
            if cap_g_rows is not None:
                cap_cells = (
                    np.concatenate((self.cap_a, self.cap_b, self.cap_a, self.cap_b))
                    * ghost
                    + np.concatenate((self.cap_a, self.cap_b, self.cap_b, self.cap_a))
                )
                np.add.at(
                    flat_all,
                    (trial_offsets * cells + cap_cells[None, :]).ravel(),
                    np.concatenate(
                        (cap_g_rows, cap_g_rows, -cap_g_rows, -cap_g_rows), axis=1
                    ).ravel(),
                )

        rhs = self._linear_rhs_batched(
            trials,
            params,
            time_s,
            source_scale,
            integration,
            previous_solutions,
            cap_history,
            source_values,
            cap_g_rows,
        )
        rhs_flat = rhs.reshape(-1)

        # MOSFET companion stamps, vectorized over (trials, devices).
        if self.num_mosfets:
            forward, drain, source, gds, gm, i_eq = self._mosfet_companion_batched(
                solutions, params
            )
            gate = np.broadcast_to(self.mos_g, drain.shape)
            rows = np.concatenate(
                (drain, source, drain, source, drain, drain, source, source), axis=1
            )
            cols = np.concatenate(
                (drain, source, source, drain, gate, source, gate, source), axis=1
            )
            vals = np.concatenate((gds, gds, -gds, -gds, gm, -gm, -gm, gm), axis=1)
            flat_all += np.bincount(
                (trial_offsets * cells + rows * ghost + cols).ravel(),
                weights=vals.ravel(),
                minlength=trials * cells,
            )
            rhs_rows = np.concatenate((drain, source), axis=1)
            rhs_flat += np.bincount(
                (trial_offsets * ghost + rhs_rows).ravel(),
                weights=np.concatenate((-i_eq, i_eq), axis=1).ravel(),
                minlength=trials * ghost,
            )

        return matrices[:, : self.size, : self.size], rhs[:, : self.size]

    def _check_solution_stack(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=float)
        if solutions.ndim != 2 or solutions.shape[1] != self.size:
            raise ValueError(
                f"solutions stack has shape {solutions.shape}, expected "
                f"(trials, {self.size})"
            )
        return solutions

    def _batched_cap_g_rows(
        self,
        trials: int,
        cap_c: Optional[np.ndarray],
        timestep_s: Optional[float],
        integration: str,
        cap_g_rows: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Resolve the per-trial capacitor companion conductances.

        ``cap_g_rows`` is a per-march invariant the lockstep caller hands in
        precomputed; derive it here for one-off assemblies.  ``None`` outside
        transient assemblies (companion models are transient-only).
        """
        if timestep_s is None:
            return None
        if cap_g_rows is not None or not self.num_capacitors:
            return cap_g_rows
        if cap_c is None:
            return np.broadcast_to(
                self._capacitor_conductance(timestep_s, integration),
                (trials, self.num_capacitors),
            )
        return self._capacitor_conductance_stacked(cap_c, timestep_s, integration)

    def _linear_rhs_batched(
        self,
        trials: int,
        params: Mapping[str, np.ndarray],
        time_s: float,
        source_scale: float,
        integration: str,
        previous_solutions: Optional[np.ndarray],
        cap_history: Optional[np.ndarray],
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
        cap_g_rows: Optional[np.ndarray],
        reuse_workspace: bool = False,
    ) -> np.ndarray:
        """The stacked linear right-hand side (sources + cap history).

        Shared by the dense and the sparse batched assembly; the per-trial
        arithmetic mirrors :meth:`_linear_rhs` operation for operation.
        With ``reuse_workspace`` the returned stack lives in a per-compiled
        scratch buffer that the next workspace-mode assembly overwrites
        (the Newton hot path consumes it within the round).
        """
        ghost = self._ghost
        trial_offsets = np.arange(trials)[:, None]
        # Independent sources (per-trial scale stacks compose exactly like
        # the serial vs_scale/is_scale overlay multipliers).
        if reuse_workspace:
            rhs = self._workspace("batched_rhs", trials, ghost, zero=True)
        else:
            rhs = np.zeros((trials, ghost))
        rhs_flat = rhs.reshape(-1)
        raw_v, raw_i = source_values if source_values is not None else (None, None)
        if self.voltage_sources:
            v_values = (
                raw_v
                if raw_v is not None
                else source_scale
                * np.fromiter(
                    (s.waveform.value(time_s) for s in self.voltage_sources),
                    dtype=float,
                    count=len(self.voltage_sources),
                )
            )
            vs_scale = params.get("vsource_scale", self.vs_scale)
            if vs_scale is not None:
                v_values = v_values * vs_scale
            rhs[:, self.vs_rows] += v_values
        if self.current_sources:
            i_values = (
                raw_i
                if raw_i is not None
                else source_scale
                * np.fromiter(
                    (s.waveform.value(time_s) for s in self.current_sources),
                    dtype=float,
                    count=len(self.current_sources),
                )
            )
            is_scale = params.get("isource_scale", self.is_scale)
            if is_scale is not None:
                i_values = i_values * is_scale
            i_tile = np.broadcast_to(i_values, (trials, len(self.current_sources)))
            source_idx = np.concatenate((self.is_plus, self.is_minus))
            weights = np.concatenate((-i_tile, i_tile), axis=1)
            rhs_flat += np.bincount(
                (trial_offsets * ghost + source_idx[None, :]).ravel(),
                weights=weights.ravel(),
                minlength=trials * ghost,
            )

        # Capacitor companion history currents, added to the RHS after the
        # sources and before the MOSFET stamps (the serial order).
        if cap_g_rows is not None:
            if previous_solutions is None:
                v_prev = np.broadcast_to(self.cap_v0, (trials, self.num_capacitors))
            else:
                # Scratch only: v_prev below is a gather (copy) from it.
                prev = self._workspace("batched_prev", trials, self.size + 1)
                prev[:, : self.size] = previous_solutions
                prev[:, self.size] = 0.0
                v_prev = prev[:, self.cap_a] - prev[:, self.cap_b]
            i_eq = cap_g_rows * v_prev
            if integration == "trap":
                if cap_history is None:
                    cap_history = np.broadcast_to(
                        np.array(
                            [c._previous_current for c in self.capacitors], dtype=float
                        ),
                        (trials, self.num_capacitors),
                    )
                i_eq = i_eq + cap_history
            np.add.at(
                rhs_flat,
                (trial_offsets * ghost + self.cap_a[None, :]).ravel(),
                i_eq.ravel(),
            )
            np.add.at(
                rhs_flat,
                (trial_offsets * ghost + self.cap_b[None, :]).ravel(),
                (-i_eq).ravel(),
            )
        return rhs

    def _mosfet_companion_batched(
        self, solutions: np.ndarray, params: Mapping[str, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked :meth:`_mosfet_companion` with per-trial parameter stacks."""
        trials = solutions.shape[0]
        # Scratch only: _mosfet_companion gathers (copies) from the padded
        # iterate, so the buffer can be recycled across Newton rounds.
        padded = self._workspace("mos_padded", trials, self.size + 1)
        padded[:, : self.size] = solutions
        padded[:, self.size] = 0.0
        return self._mosfet_companion(
            padded,
            params.get("mos_beta", self.mos_beta),
            params.get("mos_vth", self.mos_vth),
            params.get("mos_lambda", self.mos_lambda),
        )

    def assemble_sparse_batched(
        self,
        solutions: np.ndarray,
        params: Optional[Mapping[str, np.ndarray]] = None,
        gmin: float = 1e-9,
        time_s: float = 0.0,
        source_scale: float = 1.0,
        timestep_s: Optional[float] = None,
        integration: str = "be",
        previous_solutions: Optional[np.ndarray] = None,
        cap_history: Optional[np.ndarray] = None,
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = None,
        cap_g_rows: Optional[np.ndarray] = None,
        reuse_workspace: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble ``(trials, nnz)`` CSC data stacks for stacked trials.

        The sparse twin of :meth:`assemble_batched`: same signature, same
        per-trial arithmetic, but element stamps scatter into the shared CSC
        pattern of :meth:`sparsity_pattern` instead of dense ``(n, n)``
        matrices, so the memory footprint is ``trials * nnz`` rather than
        ``trials * n^2``.  Row ``t`` of the returned ``data`` is
        bit-identical to :meth:`assemble_sparse` with trial ``t``'s
        parameters — and therefore to the dense batched assembly gathered at
        the pattern positions.

        The shared-base fast path is kept: when no parameter stack perturbs
        the linear part (no ``resistor_ohm`` rows, and no ``cap_c`` rows if
        this is a transient assembly), every trial's linear data is a
        broadcast copy of the cached nominal :meth:`_base_data`.

        ``reuse_workspace`` (the batched Newton hot path) assembles into
        preallocated per-compiled scratch buffers instead of fresh arrays —
        same bits, no per-round allocation churn — at the price that the
        returned arrays are only valid until the next workspace-mode
        assembly.  Direct callers keep the allocating default.
        """
        pattern = self.sparsity_pattern()
        if pattern is None:
            raise ValueError(
                "sparse assembly does not support custom (stamp-path) elements; "
                "assemble these circuits densely"
            )
        params = dict(params or {})
        solutions = self._check_solution_stack(solutions)
        trials = solutions.shape[0]
        slots = pattern.nnz + 1  # trailing trash slot per trial
        trial_offsets = np.arange(trials)[:, None]

        resistance = params.get("resistor_ohm")
        cap_c = params.get("cap_c") if timestep_s is not None else None
        cap_g_rows = self._batched_cap_g_rows(
            trials, cap_c, timestep_s, integration, cap_g_rows
        )
        if resistance is None and cap_c is None:
            if reuse_workspace:
                data = self._workspace("sparse_data", trials, slots)
            else:
                data = np.empty((trials, slots))
            data[:] = self._base_data(gmin, timestep_s, integration)
            data_flat = data.reshape(-1)
        else:
            # Static part in the serial base-data accumulation order:
            # static entries, then the gmin diagonal, then the capacitor
            # companions (np.add.at for the capacitors — they may share
            # positions with the static stamps, and the serial path
            # accumulates those sequentially).
            if reuse_workspace:
                data = self._workspace("sparse_data", trials, slots, zero=True)
            else:
                data = np.zeros((trials, slots))
            data_flat = data.reshape(-1)
            if self._static_rows.size:
                if resistance is None:
                    data += np.bincount(
                        pattern.static_pos, weights=self._static_vals, minlength=slots
                    )
                else:
                    conductance = 1.0 / np.asarray(resistance, dtype=float)
                    n4 = 4 * len(self.resistors)
                    vals = np.broadcast_to(
                        self._static_vals, (trials, self._static_vals.size)
                    ).copy()
                    vals[:, 0:n4:4] = conductance
                    vals[:, 1:n4:4] = conductance
                    vals[:, 2:n4:4] = -conductance
                    vals[:, 3:n4:4] = -conductance
                    data_flat += np.bincount(
                        (trial_offsets * slots + pattern.static_pos[None, :]).ravel(),
                        weights=vals.ravel(),
                        minlength=trials * slots,
                    )
            data[:, pattern.gmin_diag_pos] += gmin
            if cap_g_rows is not None:
                np.add.at(
                    data_flat,
                    (trial_offsets * slots + pattern.cap_pos[None, :]).ravel(),
                    np.concatenate(
                        (cap_g_rows, cap_g_rows, -cap_g_rows, -cap_g_rows), axis=1
                    ).ravel(),
                )
            data[:, pattern.nnz] = 0.0

        rhs = self._linear_rhs_batched(
            trials,
            params,
            time_s,
            source_scale,
            integration,
            previous_solutions,
            cap_history,
            source_values,
            cap_g_rows,
            reuse_workspace=reuse_workspace,
        )

        if self.num_mosfets:
            forward, drain, source, gds, gm, i_eq = self._mosfet_companion_batched(
                solutions, params
            )
            pos = np.where(
                forward[:, None, :],
                pattern.mos_pos_forward[None, :, :],
                pattern.mos_pos_reverse[None, :, :],
            )
            vals = np.concatenate((gds, gds, -gds, -gds, gm, -gm, -gm, gm), axis=1)
            data_flat += np.bincount(
                (np.arange(trials)[:, None, None] * slots + pos).ravel(),
                weights=vals.ravel(),
                minlength=trials * slots,
            )
            rhs_rows = np.concatenate((drain, source), axis=1)
            rhs.reshape(-1)[:] += np.bincount(
                (trial_offsets * self._ghost + rhs_rows).ravel(),
                weights=np.concatenate((-i_eq, i_eq), axis=1).ravel(),
                minlength=trials * self._ghost,
            )

        return data[:, : pattern.nnz], rhs[:, : self.size]


class AnalysisEngine:
    """Shared Newton-Raphson solver over a compiled circuit.

    The engine owns the iteration loop and the convergence fallbacks; the
    analyses are thin drivers over it:

    * :meth:`solve_dc` — damped Newton with gmin-stepping and source-stepping
      fallbacks (the DC operating point);
    * :meth:`dc_sweep` — repeated operating points with warm-start
      continuation, reusing the compiled structure across points;
    * :meth:`sweep_many` — a family of sweeps through one compiled circuit
      (per-point continuation inside each family, the previous family's
      solution seeding the next);
    * :meth:`solve_transient` — fixed-step or adaptive (LTE-controlled)
      integration with per-step Newton iteration and vectorized capacitor
      history updates;
    * :meth:`solve_dc_batched` — stacked same-pattern operating points
      (Monte-Carlo trials) solved in batched LAPACK calls;
    * :meth:`solve_transient_batched` — a lockstep fixed-step transient
      march over stacked trials: shared waveform evaluation per step,
      per-trial freeze-on-convergence, batched LAPACK Newton rounds.

    Every linear solve routes through the engine's pluggable
    :class:`~repro.spice.solvers.LinearSolver` backend (``solver=`` on each
    analysis overrides the default per call).
    """

    def __init__(self, circuit: Circuit, solver: Union[None, str, LinearSolver] = None):
        self.circuit = circuit
        self._compiled: Optional[CompiledCircuit] = None
        #: The engine's default linear-solver backend (see
        #: :mod:`repro.spice.solvers`); every analysis accepts a per-call
        #: ``solver=`` override without touching this default.
        self.solver: LinearSolver = get_solver(solver)

    def set_solver(self, solver: Union[None, str, LinearSolver]) -> LinearSolver:
        """Set (and return) the engine's default linear-solver backend."""
        self.solver = get_solver(solver)
        return self.solver

    def _resolve_solver(
        self,
        solver: Union[None, str, LinearSolver],
        threads: Union[None, int, str] = None,
    ) -> LinearSolver:
        if threads is not None:
            return get_solver(solver, threads=threads)
        return self.solver if solver is None else get_solver(solver)

    @staticmethod
    def _solver_counts(solvers: Sequence[Optional[LinearSolver]]) -> Dict[str, int]:
        """Summed factorization counters over distinct solver instances.

        An analysis may touch more than one backend (the batched path plus
        the engine default its serial rescue uses); deduplicating by
        identity keeps a shared instance from being counted twice.
        """
        totals = {"factorizations": 0, "factorization_reuses": 0}
        for instance in {id(s): s for s in solvers if s is not None}.values():
            stats = instance.solver_stats()
            for key in totals:
                totals[key] += stats.get(key, 0)
        return totals

    @staticmethod
    def _counts_delta(after: Dict[str, int], before: Dict[str, int]) -> Tuple[int, int]:
        """(factorizations, reuses) performed between two counter snapshots."""
        return (
            after["factorizations"] - before["factorizations"],
            after["factorization_reuses"] - before["factorization_reuses"],
        )

    @property
    def compiled(self) -> CompiledCircuit:
        """The compiled structure, recompiled when the circuit changed.

        Recompiling while a parameter overlay is active raises instead of
        silently dropping the overlay: the perturbed vectors are sized for
        the old element population, so carrying them over could mislabel a
        Monte-Carlo trial or corner as nominal (or worse, misalign it).
        """
        if self._compiled is None or self._compiled.revision != self.circuit.revision:
            if self._compiled is not None and self._compiled._overlay is not None:
                raise RuntimeError(
                    "the circuit topology changed while a parameter overlay was "
                    "active; call AnalysisEngine.clear_parameter_overlay() (or "
                    "finish the Monte-Carlo/corner block) before adding elements "
                    "or nodes"
                )
            self._compiled = CompiledCircuit(self.circuit)
        return self._compiled

    def clear_parameter_overlay(self) -> None:
        """Drop any active parameter overlay without recompiling.

        The recovery path for the topology-changed-under-overlay error:
        unlike ``engine.compiled.clear_parameter_overlay()``, this works on
        the stale compiled object directly, so it cannot re-raise.
        """
        if self._compiled is not None:
            self._compiled.clear_parameter_overlay()

    def assemble_system(
        self, state: AnalysisState, source_scale: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble (matrix, rhs) at ``state`` through the compiled path."""
        return self.compiled.assemble(state, source_scale=source_scale)

    # ------------------------------------------------------------------ #
    # the Newton loop (the only copy in the package)
    # ------------------------------------------------------------------ #

    def _newton(
        self,
        solution: np.ndarray,
        *,
        gmin: float,
        max_iterations: int,
        tolerance_v: float,
        damping_v: float,
        time_s: float = 0.0,
        timestep_s: Optional[float] = None,
        previous_solution: Optional[np.ndarray] = None,
        integration: str = "be",
        source_scale: float = 1.0,
        cap_history: Optional[np.ndarray] = None,
        solver: Optional[LinearSolver] = None,
        reuse_state: Optional[_NewtonReuseState] = None,
    ) -> Tuple[np.ndarray, int, bool, float]:
        """One Newton-Raphson run; returns (solution, iterations, converged, max_update).

        The linear solve of each iteration goes through ``solver`` (the
        engine's default backend when omitted).  A singular Jacobian bumps
        ``gmin`` an order of magnitude and retries instead of raising, so
        structurally defective circuits report non-convergence rather than
        blowing up the caller.

        ``reuse_state`` (``newton="reuse"``) routes every solve through
        :meth:`_reuse_solve`, which keeps the last factorization across
        rounds — and across calls sharing the state, e.g. the steps of a
        transient march — instead of refactorizing each round.
        """
        compiled = self.compiled
        if solver is None:
            solver = self.solver
        solver = solver.select(compiled)
        solver.bind(compiled)
        # Pattern-assembly backends (sparse) take CSC data straight from
        # assemble_sparse — no dense matrix is ever formed.  Circuits with
        # custom elements have no pattern and keep the dense assembly.
        pattern = (
            compiled.sparsity_pattern() if solver.wants_pattern_assembly else None
        )
        converged = False
        max_update = float("inf")
        iteration = 0
        gmin_bumped = False
        # Per-solve invariants, hoisted out of the iteration loop: the
        # source waveform values (constant at one time point) and the
        # capacitor companion conductances (set by the timestep alone).
        source_values = compiled._source_values(time_s, source_scale)
        cap_g = (
            compiled._capacitor_conductance(timestep_s, integration)
            if timestep_s is not None and compiled.num_capacitors
            else None
        )
        for iteration in range(1, max_iterations + 1):
            state = AnalysisState(
                solution=solution,
                time_s=time_s,
                timestep_s=timestep_s,
                previous_solution=previous_solution,
                integration=integration,
                gmin=gmin,
            )
            bypassed = False
            try:
                if pattern is not None:
                    data, rhs = compiled.assemble_sparse(
                        state,
                        source_scale,
                        cap_history,
                        cache_base=not gmin_bumped,
                        source_values=source_values,
                        cap_g=cap_g,
                    )
                    if reuse_state is None:
                        new_solution = solver.solve_pattern(data, rhs)
                    else:
                        new_solution, bypassed = self._reuse_solve(
                            solver, reuse_state, solution, data, rhs, pattern
                        )
                else:
                    matrix, rhs = compiled.assemble(
                        state,
                        source_scale,
                        cap_history,
                        cache_base=not gmin_bumped,
                        source_values=source_values,
                        cap_g=cap_g,
                    )
                    if reuse_state is None:
                        new_solution = solver.solve(matrix, rhs)
                    else:
                        new_solution, bypassed = self._reuse_solve(
                            solver, reuse_state, solution, matrix, rhs, None
                        )
            except np.linalg.LinAlgError:
                if reuse_state is not None:
                    reuse_state.invalidate()
                gmin = max(gmin * 10.0, 1e-12)
                gmin_bumped = True
                continue

            update = new_solution - solution
            max_update = float(np.max(np.abs(update))) if update.size else 0.0
            # Per-unknown clamp: a runaway node (e.g. a floating terminal
            # hanging off a cut-off transistor) must not stall the rest.
            update = np.clip(update, -damping_v, damping_v)
            solution = solution + update
            if reuse_state is not None:
                reuse_state.observe(bypassed, max_update, tolerance_v)

            if max_update < tolerance_v:
                converged = True
                break
        return solution, iteration, converged, max_update

    def _reuse_solve(
        self,
        solver: LinearSolver,
        state: _NewtonReuseState,
        solution: np.ndarray,
        system: np.ndarray,
        rhs: np.ndarray,
        pattern,
    ) -> Tuple[np.ndarray, bool]:
        """One Newton linear solve through the march's frozen factorization.

        Returns ``(new_solution, bypassed)``.  Three regimes:

        * the assembled system is bitwise identical to the frozen one —
          solving through the kept LU *is* this round's full Newton step
          (bit-identical by construction; linear circuits and unchanged
          transient Jacobians live here);
        * the system changed but the frozen LU still contracts — the
          modified-Newton bypass steps against the *current* residual
          ``A(x) x - b(x)`` through the old factorization (same fixed
          point, no refactorization);
        * no usable factorization (first round, contraction stall,
          singular drop) — refactor at the current iterate and freeze the
          fresh handle.
        """
        handle = state.handle
        if handle is not None:
            fingerprint = FactorizationCache.fingerprint(system)
            if fingerprint == handle.fingerprint:
                return handle.solve(rhs), False
            if not state.stale and state.engaged():
                if pattern is not None:
                    ax = np.bincount(
                        pattern.rows,
                        weights=system * solution[pattern.cols],
                        minlength=pattern.size,
                    )
                else:
                    ax = system @ solution
                return solution - handle.solve(ax - rhs), True
        if pattern is not None:
            handle = solver.factorize_pattern(system)
        else:
            handle = solver.factorize(system)
        state.freeze(handle)
        return handle.solve(rhs), False

    # ------------------------------------------------------------------ #
    # DC operating point
    # ------------------------------------------------------------------ #

    def solve_dc(
        self,
        initial_guess: Optional[np.ndarray] = None,
        max_iterations: int = 300,
        tolerance_v: float = 1e-7,
        gmin: float = 1e-9,
        damping_v: float = 0.6,
        time_s: float = 0.0,
        refresh: bool = True,
        solver: Union[None, str, LinearSolver] = None,
        newton: Optional[str] = None,
    ):
        """Solve the DC operating point; returns an ``OperatingPoint``.

        A plain damped Newton iteration is tried first.  If it fails, the
        engine falls back to gmin stepping (re-solving with a strongly
        increased node-to-ground conductance relaxed decade by decade) and,
        if that also fails, to source stepping (ramping every independent
        source from 10 % to full drive with solution continuation).

        ``refresh`` re-reads element parameter values before solving so
        in-place mutations are honoured; batch drivers that refresh once up
        front (sweeps, transient) pass ``False`` for the inner solves.
        ``solver`` selects the linear-solver backend for this solve (name or
        :class:`~repro.spice.solvers.LinearSolver` instance; the engine's
        default backend when omitted).

        ``newton`` selects the Newton flavour: ``None``/``"full"`` (the
        bit-compatible default — refactorize every round) or ``"reuse"``
        (modified Newton: keep the last factorization while its contraction
        holds, refactor on stall; bit-identical for linear circuits, within
        tolerance otherwise).  The convergence fallbacks always run full
        Newton — a circuit that already failed to converge gets the most
        robust iteration, not the cheapest.

        The returned point carries a
        :class:`~repro.spice.dcop.ConvergenceInfo` naming the strategy that
        produced it, so a solve rescued by a fallback is never silent.
        """
        from repro.spice.dcop import ConvergenceInfo, OperatingPoint

        circuit = self.circuit
        if circuit.system_size == 0:
            raise ValueError("the circuit has no unknowns to solve for")
        if refresh:
            self.compiled.refresh_values()
        solution = (
            initial_guess.copy() if initial_guess is not None else circuit.initial_solution()
        )
        if solution.shape != (circuit.system_size,):
            raise ValueError(
                f"initial guess has shape {solution.shape}, expected ({circuit.system_size},)"
            )

        resolved = self._resolve_solver(solver)
        reuse_state = _NewtonReuseState() if _wants_newton_reuse(newton) else None
        counts_before = self._solver_counts((resolved, self.solver))
        controls = dict(
            max_iterations=max_iterations,
            tolerance_v=tolerance_v,
            damping_v=damping_v,
            time_s=time_s,
            solver=resolved,
        )
        solution, iterations, converged, max_update = self._newton(
            solution, gmin=gmin, reuse_state=reuse_state, **controls
        )
        total_iterations = iterations
        strategy = "newton"

        if not converged:
            # gmin stepping: start almost linear, relax towards the target
            # gmin; intermediate stages only seed the next one.
            stepped = circuit.initial_solution()
            final_ok = False
            for step_gmin in GMIN_LADDER + (gmin,):
                stepped, used, final_ok, max_update = self._newton(
                    stepped, gmin=step_gmin, **controls
                )
                total_iterations += used
            if final_ok:
                solution = stepped
                converged = True
                strategy = "gmin-stepping"

        if not converged:
            # Source stepping: ramp all independent sources up from 10 %,
            # reusing each stage's solution; only full drive must converge.
            stepped = circuit.initial_solution()
            final_ok = False
            for scale in SOURCE_LADDER:
                stepped, used, final_ok, max_update = self._newton(
                    stepped, gmin=gmin, source_scale=scale, **controls
                )
                total_iterations += used
            if final_ok:
                solution = stepped
                converged = True
                strategy = "source-stepping"

        if not converged:
            strategy = "failed"

        factorizations, reuses = self._counts_delta(
            self._solver_counts((resolved, self.solver)), counts_before
        )
        return OperatingPoint(
            circuit=circuit,
            solution=solution,
            iterations=total_iterations,
            converged=converged,
            max_residual=max_update,
            convergence_info=ConvergenceInfo(
                strategy=strategy,
                iterations=total_iterations,
                final_max_update_v=max_update,
                factorizations=factorizations,
                factorization_reuses=reuses,
            ),
        )

    # ------------------------------------------------------------------ #
    # batched DC solves (stacked Monte-Carlo trials)
    # ------------------------------------------------------------------ #

    def _newton_batched(
        self,
        solutions: np.ndarray,
        params: Mapping[str, np.ndarray],
        *,
        gmin: float,
        max_iterations: int,
        tolerance_v: float,
        damping_v: float,
        time_s: float = 0.0,
        timestep_s: Optional[float] = None,
        previous_solutions: Optional[np.ndarray] = None,
        integration: str = "be",
        cap_history: Optional[np.ndarray] = None,
        source_values: Optional[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = None,
        cap_g_rows: Optional[np.ndarray] = None,
        source_scale: float = 1.0,
        solver: LinearSolver,
        reuse_states: Optional[List[_NewtonReuseState]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Newton iteration over stacked systems; one linear solve per round.

        Mutates and returns ``solutions`` (``(trials, n)``) together with
        per-trial ``(iterations, converged, max_updates, poisoned)`` arrays.
        Each trial's update sequence — assembly, solve, damping clamp,
        convergence test — is element-for-element the same arithmetic as a
        serial :meth:`_newton` run with that trial's parameters, and a trial
        is frozen the moment it converges, so batched results match the
        per-trial path bit for bit.  A singular system anywhere in the
        stack ends the batched run early; every trial still active at the
        abort comes back flagged in ``poisoned`` (a serial run would have
        bumped gmin mid-iteration, so those trials' states no longer track
        the serial path and must be rescued per trial by the caller).

        With ``timestep_s`` set this is one lockstep *transient* Newton
        round over the stack: ``previous_solutions``/``cap_history`` carry
        the per-trial capacitor companion state and ``source_values`` the
        waveform values evaluated once for the whole step.  ``source_scale``
        scales every independent source (the batched source-stepping
        ladder).

        ``reuse_states`` (one :class:`_NewtonReuseState` per stack row)
        switches the sparse-batched path to per-trial modified Newton: each
        trial keeps its frozen LU across rounds — and across the calls of a
        lockstep march sharing the states — refactorizing only on a
        contraction stall (see :meth:`_reuse_round_batched`).  Backends
        without per-trial reuse handles (dense) ignore it and run the
        bit-compatible default rounds.
        """
        compiled = self.compiled
        trials = solutions.shape[0]
        iterations = np.zeros(trials, dtype=int)
        converged = np.zeros(trials, dtype=bool)
        max_updates = np.full(trials, np.inf)
        poisoned = np.zeros(trials, dtype=bool)
        active = np.ones(trials, dtype=bool)
        solver = solver.select(compiled, trials)
        solver.bind(compiled)
        # Pattern-assembly backends (sparse) get (trials, nnz) CSC data
        # stacks instead of dense (trials, n, n) stacks — same per-trial
        # arithmetic, trials * nnz memory instead of trials * n^2.
        pattern = (
            compiled.sparsity_pattern() if solver.wants_pattern_assembly else None
        )
        assemble = (
            compiled.assemble_sparse_batched
            if pattern is not None
            else compiled.assemble_batched
        )
        # The hot path owns the assembled arrays for exactly one round, so
        # the sparse assembly may recycle its scratch buffers.
        assemble_kwargs = {"reuse_workspace": True} if pattern is not None else {}
        use_reuse = (
            reuse_states is not None
            and pattern is not None
            and hasattr(solver, "factorize_pattern_batched")
        )
        for iteration in range(1, max_iterations + 1):
            index = np.flatnonzero(active)
            bypassed: Optional[np.ndarray] = None
            if use_reuse:
                # Reuse mode assembles the full stack (no index
                # compression): stack row == trial identity must stay
                # stable so every trial keeps its own frozen LU across
                # rounds, and frozen/converged trials simply drop out of
                # the factorization mask instead of being re-packed.
                matrices, rhs = assemble(
                    solutions,
                    params,
                    gmin=gmin,
                    time_s=time_s,
                    timestep_s=timestep_s,
                    integration=integration,
                    previous_solutions=previous_solutions,
                    cap_history=cap_history,
                    source_values=source_values,
                    cap_g_rows=cap_g_rows,
                    source_scale=source_scale,
                    **assemble_kwargs,
                )
                new_solutions, index, bypassed = self._reuse_round_batched(
                    solver, reuse_states, solutions, matrices, rhs, index,
                    pattern, active, poisoned,
                )
                if index.size == 0:
                    break
            else:
                subset = {name: stack[index] for name, stack in params.items()}
                matrices, rhs = assemble(
                    solutions[index],
                    subset,
                    gmin=gmin,
                    time_s=time_s,
                    timestep_s=timestep_s,
                    integration=integration,
                    previous_solutions=(
                        None if previous_solutions is None else previous_solutions[index]
                    ),
                    cap_history=None if cap_history is None else cap_history[index],
                    source_values=source_values,
                    cap_g_rows=None if cap_g_rows is None else cap_g_rows[index],
                    source_scale=source_scale,
                    **assemble_kwargs,
                )
                try:
                    if pattern is not None:
                        new_solutions = solver.solve_pattern_batched(matrices, rhs)
                    else:
                        new_solutions = solver.solve_batched(matrices, rhs)
                except np.linalg.LinAlgError:
                    # A singular system anywhere raises for the whole stack.
                    # Isolate it: re-solve the round trial by trial (same
                    # LAPACK routine, bit-identical results), flag only the
                    # genuinely singular trials for the caller's serial rescue
                    # (a serial run bumps gmin mid-iteration there) and keep
                    # everyone else marching in lockstep.
                    new_solutions = np.empty_like(rhs)
                    bad = np.zeros(index.size, dtype=bool)
                    for row in range(index.size):
                        try:
                            if pattern is not None:
                                new_solutions[row] = solver.solve_pattern(
                                    matrices[row], rhs[row]
                                )
                            else:
                                new_solutions[row] = solver.solve(matrices[row], rhs[row])
                        except np.linalg.LinAlgError:
                            bad[row] = True
                    if bad.any():
                        poisoned[index[bad]] = True
                        active[index[bad]] = False
                        index = index[~bad]
                        new_solutions = new_solutions[~bad]
                        if index.size == 0:
                            break
            update = new_solutions - solutions[index]
            updates_max = (
                np.max(np.abs(update), axis=1) if update.size else np.zeros(len(index))
            )
            update = np.clip(update, -damping_v, damping_v)
            solutions[index] = solutions[index] + update
            iterations[index] = iteration
            max_updates[index] = updates_max
            if use_reuse:
                for row, trial in enumerate(index):
                    reuse_states[trial].observe(
                        bool(bypassed[row]), float(updates_max[row]), tolerance_v
                    )
            done = updates_max < tolerance_v
            if done.any():
                converged[index[done]] = True
                active[index[done]] = False
            if not active.any():
                break
        return solutions, iterations, converged, max_updates, poisoned

    def _reuse_round_batched(
        self,
        solver: LinearSolver,
        reuse_states: List[_NewtonReuseState],
        solutions: np.ndarray,
        matrices: np.ndarray,
        rhs: np.ndarray,
        index: np.ndarray,
        pattern,
        active: np.ndarray,
        poisoned: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One batched modified-Newton round against per-trial frozen LUs.

        For every active trial: a bitwise-unchanged Jacobian solves through
        its frozen LU directly, a changed-but-contracting one takes the
        modified-Newton bypass step, and first-round/stalled trials
        refactorize together through
        :meth:`~repro.spice.solvers.BatchedSparseSolver.factorize_pattern_batched`
        (the threaded fan-out) with a mask over exactly the trials that
        need fresh LUs.  Returns ``(new_solutions, index, bypassed)``
        aligned row for row; trials whose fresh factorization is singular
        are poisoned and dropped, mirroring the default path's isolation.
        """
        new_solutions = np.empty((index.size, solutions.shape[1]))
        bypassed = np.zeros(index.size, dtype=bool)
        refreeze: List[int] = []
        for row, trial in enumerate(index):
            state = reuse_states[trial]
            handle = state.handle
            if handle is None:
                refreeze.append(row)
                continue
            fingerprint = FactorizationCache.fingerprint(matrices[trial])
            if fingerprint == handle.fingerprint:
                new_solutions[row] = handle.solve(rhs[trial])
            elif state.stale or not state.engaged():
                refreeze.append(row)
            else:
                residual = (
                    np.bincount(
                        pattern.rows,
                        weights=matrices[trial] * solutions[trial][pattern.cols],
                        minlength=pattern.size,
                    )
                    - rhs[trial]
                )
                new_solutions[row] = solutions[trial] - handle.solve(residual)
                bypassed[row] = True
        if refreeze:
            mask = np.zeros(matrices.shape[0], dtype=bool)
            mask[index[refreeze]] = True
            bad_rows: List[int] = []
            try:
                handles = solver.factorize_pattern_batched(matrices, active=mask)
            except np.linalg.LinAlgError:
                # A singular trial raises for the whole fan-out; isolate it
                # trial by trial and flag only the genuinely singular ones.
                handles = [None] * matrices.shape[0]
                for row in refreeze:
                    trial = index[row]
                    try:
                        handles[trial] = solver.factorize_pattern(matrices[trial])
                    except np.linalg.LinAlgError:
                        bad_rows.append(row)
            for row in refreeze:
                trial = index[row]
                handle = handles[trial]
                if handle is None:
                    continue
                reuse_states[trial].freeze(handle)
                new_solutions[row] = handle.solve(rhs[trial])
            if bad_rows:
                bad = np.zeros(index.size, dtype=bool)
                bad[bad_rows] = True
                poisoned[index[bad]] = True
                active[index[bad]] = False
                index = index[~bad]
                new_solutions = new_solutions[~bad]
                bypassed = bypassed[~bad]
        return new_solutions, index, bypassed

    def _parameter_stacks(
        self,
        params: Optional[Mapping[str, np.ndarray]],
        trials: Optional[int],
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Validate ``(trials, count)`` parameter stacks; returns (stacks, trials).

        Shared by :meth:`solve_dc_batched` and :meth:`solve_transient_batched`.
        """
        lengths = self.compiled._parameter_lengths()
        stacks: Dict[str, np.ndarray] = {}
        count = trials
        for name, stack in (params or {}).items():
            if name not in lengths:
                raise ValueError(
                    f"unknown parameter {name!r}; expected one of {PERTURBABLE_PARAMETERS}"
                )
            array = np.asarray(stack, dtype=float)
            if array.ndim != 2 or array.shape[1] != lengths[name]:
                raise ValueError(
                    f"{name!r} stack has shape {array.shape}, expected "
                    f"(trials, {lengths[name]})"
                )
            if count is None:
                count = array.shape[0]
            elif array.shape[0] != count:
                raise ValueError(
                    f"inconsistent trial counts: {name!r} has {array.shape[0]} rows, "
                    f"expected {count}"
                )
            stacks[name] = array
        if count is None:
            raise ValueError("pass trials= when params carries no parameter stacks")
        if count <= 0:
            raise ValueError("at least one trial is required")
        return stacks, count

    def solve_dc_batched(
        self,
        params: Optional[Mapping[str, np.ndarray]] = None,
        trials: Optional[int] = None,
        initial_guess: Optional[np.ndarray] = None,
        max_iterations: int = 300,
        tolerance_v: float = 1e-7,
        gmin: float = 1e-9,
        damping_v: float = 0.6,
        time_s: float = 0.0,
        refresh: bool = True,
        solver: Union[None, str, LinearSolver] = "batched",
        newton: Optional[str] = None,
        threads: Union[None, int, str] = None,
    ):
        """Solve many same-pattern DC operating points in stacked batches.

        ``params`` maps perturbable parameter names (see
        :data:`PERTURBABLE_PARAMETERS`) to ``(trials, count)`` stacks — one
        row per trial; parameters not given keep the compiled values for
        every trial.  This is the Monte-Carlo fast path: all trials share
        one compiled structure and every Newton round solves the whole
        stack in a single batched LAPACK call instead of ``trials`` separate
        dense solves.

        ``initial_guess`` may be one ``(n,)`` vector (shared warm start) or
        a ``(trials, n)`` stack.  Trials the plain batched Newton cannot
        converge fall back to the serial :meth:`solve_dc` — with its full
        gmin-stepping and source-stepping ladders — one by one, so the
        result quality matches the per-trial path exactly.

        ``newton="reuse"`` runs per-trial modified Newton on the
        sparse-batched path (each trial keeps its LU until its contraction
        stalls); ``threads`` fans the per-trial sparse factorizations
        across a thread pool (see
        :class:`~repro.spice.solvers.BatchedSparseSolver`) and requires a
        sparse-batched-capable ``solver`` spec (``"sparse-batched"`` or
        ``"auto"``).

        Returns a :class:`~repro.spice.dcop.BatchedOperatingPoints`.
        """
        from repro.spice.dcop import BatchedOperatingPoints

        circuit = self.circuit
        if circuit.system_size == 0:
            raise ValueError("the circuit has no unknowns to solve for")
        compiled = self.compiled
        if refresh:
            compiled.refresh_values()
        stacks, count = self._parameter_stacks(params, trials)

        size = circuit.system_size
        if initial_guess is None:
            solutions = np.zeros((count, size))
            guess_row = None
        else:
            guess = np.asarray(initial_guess, dtype=float)
            if guess.shape == (size,):
                solutions = np.tile(guess, (count, 1))
                guess_row = guess
            elif guess.shape == (count, size):
                solutions = guess.copy()
                guess_row = None
            else:
                raise ValueError(
                    f"initial guess has shape {guess.shape}, expected ({size},) "
                    f"or ({count}, {size})"
                )
        original_guesses = solutions.copy()

        resolved = self._resolve_solver(solver, threads)
        want_reuse = _wants_newton_reuse(newton)
        counts_before = self._solver_counts((resolved, self.solver))
        solutions, iterations, converged, residuals, poisoned = self._newton_batched(
            solutions,
            stacks,
            gmin=gmin,
            max_iterations=max_iterations,
            tolerance_v=tolerance_v,
            damping_v=damping_v,
            time_s=time_s,
            solver=resolved,
            reuse_states=(
                [_NewtonReuseState() for _ in range(count)] if want_reuse else None
            ),
        )
        strategies = ["batched-newton" if ok else "failed" for ok in converged]
        # Trials caught in a singular batched solve no longer track the
        # serial arithmetic (a serial run bumps gmin mid-iteration); they
        # skip the batched ladders and go straight to the per-trial rescue.
        tainted = poisoned.copy()

        if not (converged | tainted).all():
            # Batched gmin-stepping ladder: exactly the serial fallback's
            # stage sequence (each stage seeds the next, converged or not,
            # always starting from the zero initial solution), run over the
            # whole failed subset with one batched solve per Newton round.
            ladder_controls = dict(
                max_iterations=max_iterations,
                tolerance_v=tolerance_v,
                damping_v=damping_v,
                time_s=time_s,
                solver=resolved,
            )
            ladder_idx = np.flatnonzero(~converged & ~tainted)
            sub = {name: stack[ladder_idx] for name, stack in stacks.items()}
            stepped = np.zeros((ladder_idx.size, size))
            final_ok = np.zeros(ladder_idx.size, dtype=bool)
            stage_resid = np.full(ladder_idx.size, np.inf)
            for step_gmin in GMIN_LADDER + (gmin,):
                stepped, used, final_ok, stage_resid, stage_poisoned = (
                    self._newton_batched(
                        stepped, sub, gmin=step_gmin, **ladder_controls
                    )
                )
                iterations[ladder_idx] += used
                if stage_poisoned.any():
                    # Drop tainted trials from the remaining stages so one
                    # singular trial cannot keep perturbing the stack.
                    tainted[ladder_idx[stage_poisoned]] = True
                    keep = ~stage_poisoned
                    ladder_idx = ladder_idx[keep]
                    sub = {name: rows[keep] for name, rows in sub.items()}
                    stepped = stepped[keep]
                    final_ok = final_ok[keep]
                    stage_resid = stage_resid[keep]
                    if ladder_idx.size == 0:
                        break
            # The in-loop trimming guarantees no tainted trial is left in
            # ladder_idx, so the stage outcome arrays map one to one.
            fixed = ladder_idx[final_ok]
            solutions[fixed] = stepped[final_ok]
            converged[fixed] = True
            residuals[fixed] = stage_resid[final_ok]
            for trial in fixed:
                strategies[trial] = "gmin-stepping"

            # Batched source-stepping ladder for what the gmin ladder left.
            still = ladder_idx[~final_ok]
            if still.size:
                sub2 = {name: stack[still] for name, stack in stacks.items()}
                stepped2 = np.zeros((still.size, size))
                ok2 = np.zeros(still.size, dtype=bool)
                res2 = np.full(still.size, np.inf)
                for scale in SOURCE_LADDER:
                    stepped2, used2, ok2, res2, poisoned2 = self._newton_batched(
                        stepped2,
                        sub2,
                        gmin=gmin,
                        source_scale=scale,
                        **ladder_controls,
                    )
                    iterations[still] += used2
                    if poisoned2.any():
                        tainted[still[poisoned2]] = True
                        keep = ~poisoned2
                        still = still[keep]
                        sub2 = {name: rows[keep] for name, rows in sub2.items()}
                        stepped2 = stepped2[keep]
                        ok2 = ok2[keep]
                        res2 = res2[keep]
                        if still.size == 0:
                            break
                good = still[ok2]
                solutions[good] = stepped2[ok2]
                converged[good] = True
                # Serial solve_dc reports the last attempted Newton update,
                # which after a source ladder is the final stage's — mirror
                # that for the failures too (untainted ladder failures are
                # final: the serial path would fail identically).
                residuals[still] = res2
                for trial in good:
                    strategies[trial] = "source-stepping"

        if (~converged & tainted).any():
            # Per-trial rescue through the serial path and its ladders —
            # only for trials whose batched arithmetic was cut short by a
            # singular stacked solve (untainted failures already reproduced
            # the serial ladders bit for bit and stay failed).  The trial
            # overlay composes on top of any active base overlay (e.g. a
            # corner) exactly like the serial Monte-Carlo path.
            saved_overlay = dict(compiled._overlay) if compiled._overlay else None
            try:
                for trial in np.flatnonzero(~converged & tainted):
                    overlay = dict(saved_overlay or {})
                    overlay.update(
                        {name: stack[trial] for name, stack in stacks.items()}
                    )
                    if overlay:
                        compiled.set_parameter_overlay(overlay)
                    point = self.solve_dc(
                        initial_guess=(
                            guess_row if guess_row is not None else original_guesses[trial]
                        ),
                        max_iterations=max_iterations,
                        tolerance_v=tolerance_v,
                        gmin=gmin,
                        damping_v=damping_v,
                        time_s=time_s,
                        refresh=False,
                    )
                    solutions[trial] = point.solution
                    iterations[trial] += point.iterations
                    converged[trial] = point.converged
                    residuals[trial] = point.max_residual
                    strategies[trial] = point.convergence_info.strategy
            finally:
                if saved_overlay is not None:
                    compiled.set_parameter_overlay(saved_overlay)
                else:
                    compiled.clear_parameter_overlay()

        factorizations, reuses = self._counts_delta(
            self._solver_counts((resolved, self.solver)), counts_before
        )
        return BatchedOperatingPoints(
            circuit=circuit,
            solutions=solutions,
            iterations=iterations,
            converged=converged,
            max_residuals=residuals,
            strategies=tuple(strategies),
            factorizations=factorizations,
            factorization_reuses=reuses,
        )

    # ------------------------------------------------------------------ #
    # DC sweeps
    # ------------------------------------------------------------------ #

    def dc_sweep(
        self,
        source: Union[VoltageSource, CurrentSource, str],
        values: Sequence[float],
        gmin: float = 1e-12,
        max_iterations: int = 200,
        warm_start: bool = True,
        initial_guess: Optional[np.ndarray] = None,
        solver: Union[None, str, LinearSolver] = None,
        newton: Optional[str] = None,
    ):
        """Sweep an independent source; returns a ``DCSweepResult``.

        Each point starts the Newton iteration from the previous point's
        solution (continuation) unless ``warm_start`` is disabled; the first
        point can be seeded with ``initial_guess`` (used by
        :meth:`sweep_many` to chain families).
        """
        from repro.spice.dcsweep import DCSweepResult

        source = self._resolve_source(source)
        values_array = np.asarray(list(values), dtype=float)
        if values_array.size == 0:
            raise ValueError("at least one sweep value is required")

        self.compiled.refresh_values()
        solver = self._resolve_solver(solver)
        points = []
        guess = initial_guess
        original_waveform = source.waveform
        try:
            for value in values_array:
                source.set_level(float(value))
                point = self.solve_dc(
                    initial_guess=guess,
                    gmin=gmin,
                    max_iterations=max_iterations,
                    refresh=False,
                    solver=solver,
                    newton=newton,
                )
                points.append(point)
                guess = point.solution.copy() if warm_start else initial_guess
        finally:
            source.waveform = original_waveform

        return DCSweepResult(circuit=self.circuit, values=values_array, points=points)

    def sweep_many(
        self,
        source: Union[VoltageSource, CurrentSource, str],
        families: Mapping[Hashable, Sequence[float]],
        configure: Optional[Callable[[Hashable], None]] = None,
        gmin: float = 1e-12,
        max_iterations: int = 200,
        solver: Union[None, str, LinearSolver] = None,
        newton: Optional[str] = None,
    ) -> Dict[Hashable, object]:
        """Run a family of DC sweeps through one compiled circuit.

        ``families`` maps a label to the sweep values of that member (e.g.
        one gate voltage per family in the series-switch drive study).
        ``configure(label)`` is called before each family so the caller can
        reconfigure other sources.  Every family warm-starts internally and
        is seeded with the first-point solution of the previous family, so
        the whole batch shares both the compiled structure and continuation.

        Returns an ordered dict of ``DCSweepResult`` keyed by label.
        """
        source = self._resolve_source(source)
        solver = self._resolve_solver(solver)
        results: Dict[Hashable, object] = {}
        seed: Optional[np.ndarray] = None
        for label, values in families.items():
            if configure is not None:
                configure(label)
            sweep = self.dc_sweep(
                source,
                values,
                gmin=gmin,
                max_iterations=max_iterations,
                initial_guess=seed,
                solver=solver,
                newton=newton,
            )
            results[label] = sweep
            seed = sweep.points[0].solution.copy()
        return results

    def _resolve_source(self, source) -> Union[VoltageSource, CurrentSource]:
        if isinstance(source, str):
            source = self.circuit.element(source)
        if not isinstance(source, (VoltageSource, CurrentSource)):
            raise TypeError("dc_sweep needs a VoltageSource or CurrentSource (or its name)")
        return source

    # ------------------------------------------------------------------ #
    # transient analysis
    # ------------------------------------------------------------------ #

    def solve_transient(
        self,
        stop_time_s: float,
        timestep_s: float,
        integration: str = "be",
        max_newton_iterations: int = 100,
        tolerance_v: float = 1e-6,
        gmin: float = 1e-9,
        use_initial_conditions: bool = False,
        adaptive: bool = False,
        lte_tolerance_v: float = 2e-3,
        min_timestep_s: Optional[float] = None,
        max_timestep_s: Optional[float] = None,
        solver: Union[None, str, LinearSolver] = None,
        newton: Optional[str] = None,
    ):
        """Transient analysis; returns a ``TransientResult``.

        Starts from the DC operating point at ``t = 0`` (or from zero with
        ``use_initial_conditions``) and marches with per-step Newton
        iteration; capacitor companion histories are updated vectorized
        after every accepted step.

        With ``adaptive=False`` (the default) the march uses the fixed
        ``timestep_s`` grid, bit-compatible with the historical behaviour.
        With ``adaptive=True`` an LTE-based step-size controller drives the
        march: ``timestep_s`` becomes the initial step, each step's local
        truncation error is estimated against a polynomial predictor and
        the step is accepted/rejected against ``lte_tolerance_v``, with the
        step size clamped to ``[min_timestep_s, max_timestep_s]``
        (defaulting to ``timestep_s / 64`` and ``timestep_s * 64``).  The
        controller never steps across a source-waveform breakpoint, so
        stimulus edges cannot be skipped however large the step grows.

        ``newton="reuse"`` keeps one modified-Newton factorization state
        across the whole march — the frozen LU carries over between steps,
        refactorizing only when its contraction stalls, which is where a
        transient run saves most of its factorizations (the warm-start DC
        solve shares the mode).  The default refactorizes every round,
        bit-compatible with earlier releases.

        Either way the result carries a
        :class:`~repro.spice.transient.TransientConvergenceInfo` with the
        Newton totals, the controller's step-acceptance statistics and the
        march's factorization/reuse counts.
        """
        if stop_time_s <= 0.0 or timestep_s <= 0.0:
            raise ValueError("stop time and timestep must be positive")
        if timestep_s > stop_time_s:
            raise ValueError("the timestep cannot exceed the stop time")
        if integration not in ("be", "trap"):
            raise ValueError("integration must be 'be' or 'trap'")

        compiled = self.compiled
        compiled.refresh_values()
        for capacitor in compiled.capacitors:
            capacitor.reset()
        history_elements = [
            element
            for element in compiled.custom_elements
            if callable(getattr(element, "update_history", None))
        ]
        for element in history_elements:
            if callable(getattr(element, "reset", None)):
                element.reset()

        resolved = self._resolve_solver(solver)
        reuse_state = _NewtonReuseState() if _wants_newton_reuse(newton) else None
        counts_before = self._solver_counts((resolved, self.solver))
        if use_initial_conditions:
            initial_solution = self.circuit.initial_solution()
        else:
            # The cold warm start always runs full Newton: far from the
            # operating point the Jacobian changes too fast for a frozen
            # factorization to contract, so reuse mode would only thrash
            # (refactor, stall, refactor) before the march even begins.
            initial_solution = self.solve_dc(
                gmin=gmin, time_s=0.0, refresh=False, solver=resolved
            ).solution.copy()

        controls = dict(
            max_newton_iterations=max_newton_iterations,
            tolerance_v=tolerance_v,
            gmin=gmin,
            integration=integration,
            solver=resolved,
            reuse_state=reuse_state,
        )
        if adaptive:
            result = self._transient_adaptive(
                initial_solution,
                stop_time_s,
                timestep_s,
                lte_tolerance_v=lte_tolerance_v,
                min_timestep_s=min_timestep_s,
                max_timestep_s=max_timestep_s,
                history_elements=history_elements,
                **controls,
            )
        else:
            result = self._transient_fixed(
                initial_solution,
                stop_time_s,
                timestep_s,
                history_elements=history_elements,
                **controls,
            )
        factorizations, reuses = self._counts_delta(
            self._solver_counts((resolved, self.solver)), counts_before
        )
        result.convergence_info = dataclasses.replace(
            result.convergence_info,
            factorizations=factorizations,
            factorization_reuses=reuses,
        )
        return result

    def _transient_fixed(
        self,
        initial_solution: np.ndarray,
        stop_time_s: float,
        timestep_s: float,
        *,
        max_newton_iterations: int,
        tolerance_v: float,
        gmin: float,
        integration: str,
        solver: LinearSolver,
        history_elements: Sequence[object],
        reuse_state: Optional[_NewtonReuseState] = None,
    ):
        """The historical fixed-step march (bit-compatible parity mode)."""
        from repro.spice.transient import TransientConvergenceInfo, TransientResult

        circuit = self.circuit
        compiled = self.compiled
        cap_history = np.zeros(compiled.num_capacitors)

        steps = int(round(stop_time_s / timestep_s))
        times = np.linspace(0.0, steps * timestep_s, steps + 1)

        current_solution = initial_solution
        solutions = np.zeros((steps + 1, circuit.system_size))
        solutions[0] = current_solution
        all_converged = True
        newton_total = 0
        worst_residual = 0.0

        cap_g = (
            compiled._capacitor_conductance(timestep_s, integration)
            if compiled.num_capacitors
            else None
        )
        previous_solution = current_solution.copy()
        for step in range(1, steps + 1):
            time = times[step]
            solution, used, converged, residual = self._newton(
                current_solution.copy(),
                gmin=gmin,
                max_iterations=max_newton_iterations,
                tolerance_v=tolerance_v,
                damping_v=1.0,
                time_s=time,
                timestep_s=timestep_s,
                previous_solution=previous_solution,
                integration=integration,
                cap_history=cap_history if integration == "trap" else None,
                solver=solver,
                reuse_state=reuse_state,
            )
            newton_total += used
            worst_residual = max(worst_residual, residual)
            if not converged:
                all_converged = False

            if cap_g is not None and integration == "trap":
                # Backward Euler needs no history (its companion current
                # only uses the previous voltage, gathered during assembly).
                now = compiled._pad(solution)
                prev = compiled._pad(previous_solution)
                dv = (now[compiled.cap_a] - now[compiled.cap_b]) - (
                    prev[compiled.cap_a] - prev[compiled.cap_b]
                )
                cap_history = cap_g * dv - cap_history
            if history_elements:
                final_state = AnalysisState(
                    solution=solution,
                    time_s=time,
                    timestep_s=timestep_s,
                    previous_solution=previous_solution,
                    integration=integration,
                    gmin=gmin,
                )
                for element in history_elements:
                    element.update_history(final_state)

            solutions[step] = solution
            previous_solution = solution.copy()
            current_solution = solution

        self._mirror_capacitor_history(
            cap_history, solutions[-1], solutions[-2], timestep_s, integration
        )

        return TransientResult(
            circuit=circuit,
            time_s=times,
            solutions=solutions,
            converged=all_converged,
            convergence_info=TransientConvergenceInfo(
                strategy="fixed-step",
                newton_iterations=newton_total,
                max_newton_residual_v=worst_residual,
                accepted_steps=steps,
                rejected_steps=0,
                min_step_s=timestep_s,
                max_step_s=timestep_s,
            ),
        )

    def _transient_adaptive(
        self,
        initial_solution: np.ndarray,
        stop_time_s: float,
        timestep_s: float,
        *,
        lte_tolerance_v: float,
        min_timestep_s: Optional[float],
        max_timestep_s: Optional[float],
        max_newton_iterations: int,
        tolerance_v: float,
        gmin: float,
        integration: str,
        solver: LinearSolver,
        history_elements: Sequence[object],
        reuse_state: Optional[_NewtonReuseState] = None,
    ):
        """LTE-controlled adaptive march (accept/reject with step clamps).

        The local truncation error of each candidate step is estimated as
        the deviation of the corrector solution from a linear predictor
        extrapolated through the two previous accepted points — the
        standard divided-difference estimate, whose leading term matches
        the integrator's own error order.  Steps whose estimate exceeds
        ``lte_tolerance_v`` are rejected and retried smaller (never below
        ``min_timestep_s``); accepted steps grow the next proposal by the
        usual safety-factored power law.  Candidate steps are clipped so a
        step never crosses a source-waveform breakpoint or the stop time.
        """
        from repro.spice.transient import TransientConvergenceInfo, TransientResult

        if lte_tolerance_v <= 0.0:
            raise ValueError("lte_tolerance_v must be positive")
        min_step = timestep_s / 64.0 if min_timestep_s is None else min_timestep_s
        max_step = timestep_s * 64.0 if max_timestep_s is None else max_timestep_s
        if min_step <= 0.0:
            raise ValueError("min_timestep_s must be positive")
        max_step = max(max_step, min_step)
        # Error order of the estimate: BE is first order (LTE ~ h^2), trap
        # second order (LTE ~ h^3); the controller exponent is 1/(order+1).
        exponent = 0.5 if integration == "be" else 1.0 / 3.0
        safety = 0.9

        circuit = self.circuit
        compiled = self.compiled
        cap_history = np.zeros(compiled.num_capacitors)
        breakpoints = self._waveform_breakpoints(stop_time_s)

        times: List[float] = [0.0]
        rows: List[np.ndarray] = [initial_solution.copy()]
        previous_solution = initial_solution.copy()
        older_solution: Optional[np.ndarray] = None
        previous_dt: float = 0.0

        time = 0.0
        proposal = min(timestep_s, max_step)
        accepted = 0
        rejected = 0
        newton_total = 0
        worst_residual = 0.0
        smallest_dt = float("inf")
        largest_dt = 0.0
        all_converged = True
        time_floor = np.finfo(float).eps * max(stop_time_s, 1.0)

        while time < stop_time_s - time_floor:
            dt = min(proposal, max_step, stop_time_s - time)
            clipped = dt < proposal
            # Land exactly on the next stimulus breakpoint instead of
            # stepping over it (breakpoints are strictly inside (0, stop)).
            cursor = np.searchsorted(breakpoints, time + time_floor, side="right")
            if cursor < breakpoints.size and time + dt > breakpoints[cursor]:
                dt = breakpoints[cursor] - time
                clipped = True

            solution, used, converged, residual = self._newton(
                previous_solution.copy(),
                gmin=gmin,
                max_iterations=max_newton_iterations,
                tolerance_v=tolerance_v,
                damping_v=1.0,
                time_s=time + dt,
                timestep_s=dt,
                previous_solution=previous_solution,
                integration=integration,
                cap_history=cap_history if integration == "trap" else None,
                solver=solver,
                reuse_state=reuse_state,
            )
            newton_total += used
            can_shrink = dt > min_step * (1.0 + 1e-12)

            if not converged and can_shrink:
                rejected += 1
                proposal = max(min_step, dt * 0.25)
                continue

            if older_solution is not None and previous_dt > 0.0:
                predictor = previous_solution + (dt / previous_dt) * (
                    previous_solution - older_solution
                )
                error = float(np.max(np.abs(solution - predictor)))
            else:
                error = 0.0  # no history yet: accept the first step

            if error > lte_tolerance_v and can_shrink:
                rejected += 1
                shrink = safety * (lte_tolerance_v / error) ** exponent
                proposal = max(min_step, dt * min(max(shrink, 0.1), 0.9))
                continue

            # Accept.
            if not converged:
                all_converged = False
            worst_residual = max(worst_residual, residual)
            time += dt
            times.append(time)
            rows.append(solution.copy())
            accepted += 1
            smallest_dt = min(smallest_dt, dt)
            largest_dt = max(largest_dt, dt)

            if compiled.num_capacitors and integration == "trap":
                cap_g = compiled._capacitor_conductance(dt, integration)
                now = compiled._pad(solution)
                prev = compiled._pad(previous_solution)
                dv = (now[compiled.cap_a] - now[compiled.cap_b]) - (
                    prev[compiled.cap_a] - prev[compiled.cap_b]
                )
                cap_history = cap_g * dv - cap_history
            if history_elements:
                final_state = AnalysisState(
                    solution=solution,
                    time_s=time,
                    timestep_s=dt,
                    previous_solution=previous_solution,
                    integration=integration,
                    gmin=gmin,
                )
                for element in history_elements:
                    element.update_history(final_state)

            older_solution = previous_solution
            previous_dt = dt
            previous_solution = solution
            if error > 0.0:
                growth = safety * (lte_tolerance_v / error) ** exponent
                grown = dt * min(max(growth, 0.2), 2.0)
            else:
                grown = dt * 2.0
            # A breakpoint/stop-clipped step says nothing about the LTE the
            # controller's preferred step would produce — keep the proposal.
            proposal = min(max_step, max(min_step, max(grown, proposal) if clipped else grown))

        solutions = np.vstack(rows)
        time_axis = np.array(times)
        if len(rows) >= 2:
            self._mirror_capacitor_history(
                cap_history, solutions[-1], solutions[-2], previous_dt, integration
            )

        return TransientResult(
            circuit=circuit,
            time_s=time_axis,
            solutions=solutions,
            converged=all_converged,
            convergence_info=TransientConvergenceInfo(
                strategy="adaptive",
                newton_iterations=newton_total,
                max_newton_residual_v=worst_residual,
                accepted_steps=accepted,
                rejected_steps=rejected,
                min_step_s=smallest_dt if accepted else timestep_s,
                max_step_s=largest_dt if accepted else timestep_s,
            ),
        )

    # ------------------------------------------------------------------ #
    # batched transient (lockstep Monte-Carlo trial march)
    # ------------------------------------------------------------------ #

    def solve_transient_batched(
        self,
        stop_time_s: float,
        timestep_s: float,
        params: Optional[Mapping[str, np.ndarray]] = None,
        trials: Optional[int] = None,
        integration: str = "be",
        max_newton_iterations: int = 100,
        tolerance_v: float = 1e-6,
        gmin: float = 1e-9,
        use_initial_conditions: bool = False,
        refresh: bool = True,
        solver: Union[None, str, LinearSolver] = "batched",
        newton: Optional[str] = None,
        threads: Union[None, int, str] = None,
    ):
        """Fixed-step transient analysis of many stacked trials in lockstep.

        All trials share the circuit topology (and the fixed ``timestep_s``
        grid) but carry their own parameter stacks (``params`` maps names
        from :data:`PERTURBABLE_PARAMETERS` to ``(trials, count)`` rows).
        Every timestep advances the whole stack together: each Newton round
        assembles ``(trials, n, n)`` systems through
        :meth:`CompiledCircuit.assemble_batched` and solves them in one
        batched LAPACK call, with three structural savings over per-trial
        marching:

        * source waveforms and breakpoint-free step timing are evaluated
          once per step, not once per trial;
        * a trial is frozen the moment its step converges, so easy trials
          stop paying Newton rounds for hard ones;
        * per-trial capacitor companion histories advance vectorized.

        The per-trial arithmetic — DC warm start, per-step Newton updates,
        damping clamp, convergence test, capacitor history — mirrors
        :meth:`solve_transient`'s fixed-step path operation for operation,
        so every trial's waveform is bit-identical to a serial
        ``solve_transient`` run with that trial's parameter overlay on the
        same grid.  A trial whose step fails to converge (or hits a
        singular system, which a serial run would rescue with a gmin bump)
        is re-run through the serial :meth:`solve_transient` — with its
        full fallback ladders — so result quality matches the per-trial
        path exactly.

        Adaptive stepping is *not* supported: lockstep batching requires
        every trial to share the time grid.  Returns a
        :class:`~repro.spice.transient.BatchedTransientResult`.
        """
        from repro.spice.transient import BatchedTransientResult

        circuit = self.circuit
        if circuit.system_size == 0:
            raise ValueError("the circuit has no unknowns to solve for")
        if stop_time_s <= 0.0 or timestep_s <= 0.0:
            raise ValueError("stop time and timestep must be positive")
        if timestep_s > stop_time_s:
            raise ValueError("the timestep cannot exceed the stop time")
        if integration not in ("be", "trap"):
            raise ValueError("integration must be 'be' or 'trap'")
        compiled = self.compiled
        if compiled.custom_elements:
            raise ValueError(
                "batched transient does not support custom (stamp-path) elements; "
                "run these circuits through the per-trial path"
            )
        if refresh:
            compiled.refresh_values()
        stacks, count = self._parameter_stacks(params, trials)
        size = circuit.system_size
        resolved = self._resolve_solver(solver, threads)
        want_reuse = _wants_newton_reuse(newton)
        reuse_states = (
            [_NewtonReuseState() for _ in range(count)] if want_reuse else None
        )
        counts_before = self._solver_counts((resolved, self.solver))

        # Per-trial DC warm start at t = 0, exactly like the serial path
        # (solve_dc defaults; unconverged trials already fell back to the
        # serial ladders inside solve_dc_batched, bit for bit).
        if use_initial_conditions:
            solutions = np.tile(circuit.initial_solution(), (count, 1))
        else:
            # Cold warm start at full Newton, exactly like solve_transient:
            # reuse mode only pays off once the march tracks a slowly
            # drifting Jacobian.
            solutions = self.solve_dc_batched(
                stacks, trials=count, gmin=gmin, time_s=0.0, refresh=False,
                solver=resolved,
            ).solutions.copy()

        steps = int(round(stop_time_s / timestep_s))
        times = np.linspace(0.0, steps * timestep_s, steps + 1)
        waveforms = np.zeros((count, steps + 1, size))
        waveforms[:, 0, :] = solutions
        newton_totals = np.zeros(count, dtype=int)
        worst_residuals = np.zeros(count)
        failed = np.zeros(count, dtype=bool)
        cap_history = np.zeros((count, compiled.num_capacitors))
        cap_c_stack = stacks.get("cap_c")
        if compiled.num_capacitors:
            # March-wide invariant: the per-trial companion conductances,
            # handed to every Newton round (and reused by the trapezoidal
            # history update) instead of being re-derived per assembly.
            if cap_c_stack is None:
                cap_g = np.broadcast_to(
                    compiled._capacitor_conductance(timestep_s, integration),
                    (count, compiled.num_capacitors),
                )
            else:
                cap_g = compiled._capacitor_conductance_stacked(
                    cap_c_stack, timestep_s, integration
                )
        else:
            cap_g = None

        previous = solutions.copy()
        current = solutions
        for step in range(1, steps + 1):
            time = times[step]
            # Shared per-step invariants: every waveform is evaluated once
            # for the whole stack (the serial path pays this per trial).
            raw_v = (
                1.0
                * np.fromiter(
                    (s.waveform.value(time) for s in compiled.voltage_sources),
                    dtype=float,
                    count=len(compiled.voltage_sources),
                )
                if compiled.voltage_sources
                else None
            )
            raw_i = (
                1.0
                * np.fromiter(
                    (s.waveform.value(time) for s in compiled.current_sources),
                    dtype=float,
                    count=len(compiled.current_sources),
                )
                if compiled.current_sources
                else None
            )
            live = np.flatnonzero(~failed)
            if live.size == 0:
                break
            subset = {name: stack[live] for name, stack in stacks.items()}
            stepped, iters, conv, resid, _poisoned = self._newton_batched(
                current[live].copy(),
                subset,
                gmin=gmin,
                max_iterations=max_newton_iterations,
                tolerance_v=tolerance_v,
                damping_v=1.0,
                time_s=time,
                timestep_s=timestep_s,
                previous_solutions=previous[live],
                integration=integration,
                cap_history=cap_history[live] if integration == "trap" else None,
                source_values=(raw_v, raw_i),
                cap_g_rows=None if cap_g is None else cap_g[live],
                solver=resolved,
                reuse_states=(
                    [reuse_states[t] for t in live]
                    if reuse_states is not None
                    else None
                ),
            )
            newton_totals[live] += iters
            ok = live[conv]
            # A trial that cannot converge this step (or sat in the stack
            # when a singular system aborted the batched solve) leaves the
            # lockstep march; the serial fallback below re-runs it whole.
            failed[live[~conv]] = True
            current[ok] = stepped[conv]
            waveforms[ok, step, :] = current[ok]
            worst_residuals[ok] = np.maximum(worst_residuals[ok], resid[conv])
            if cap_g is not None and integration == "trap" and ok.size:
                now_p = np.concatenate(
                    (current[ok], np.zeros((ok.size, 1))), axis=1
                )
                prev_p = np.concatenate(
                    (previous[ok], np.zeros((ok.size, 1))), axis=1
                )
                dv = (now_p[:, compiled.cap_a] - now_p[:, compiled.cap_b]) - (
                    prev_p[:, compiled.cap_a] - prev_p[:, compiled.cap_b]
                )
                cap_history[ok] = cap_g[ok] * dv - cap_history[ok]
            previous = current.copy()

        converged = ~failed
        strategies = ["lockstep"] * count

        if failed.any():
            # Whole-trial rescue through the serial path: solve_transient
            # with the trial's overlay IS the per-trial reference, ladders
            # and gmin bumps included, so the rescued waveform matches what
            # a per-trial run would have produced bit for bit.
            saved_overlay = dict(compiled._overlay) if compiled._overlay else None
            try:
                for trial in np.flatnonzero(failed):
                    overlay = dict(saved_overlay or {})
                    overlay.update(
                        {name: stack[trial] for name, stack in stacks.items()}
                    )
                    if overlay:
                        compiled.set_parameter_overlay(overlay)
                    # Rescues always run full Newton: a trial that already
                    # failed to converge gets the most robust iteration,
                    # not the cheapest.
                    rescued = self.solve_transient(
                        stop_time_s,
                        timestep_s,
                        integration=integration,
                        max_newton_iterations=max_newton_iterations,
                        tolerance_v=tolerance_v,
                        gmin=gmin,
                        use_initial_conditions=use_initial_conditions,
                        solver=resolved,
                    )
                    waveforms[trial] = rescued.solutions
                    converged[trial] = rescued.converged
                    info = rescued.convergence_info
                    newton_totals[trial] = info.newton_iterations
                    worst_residuals[trial] = info.max_newton_residual_v
                    strategies[trial] = "serial-fallback"
            finally:
                if saved_overlay is not None:
                    compiled.set_parameter_overlay(saved_overlay)
                else:
                    compiled.clear_parameter_overlay()

        factorizations, reuses = self._counts_delta(
            self._solver_counts((resolved, self.solver)), counts_before
        )
        return BatchedTransientResult(
            circuit=circuit,
            time_s=times,
            solutions=waveforms,
            converged=converged,
            newton_iterations=newton_totals,
            max_residuals=worst_residuals,
            strategies=tuple(strategies),
            factorizations=factorizations,
            factorization_reuses=reuses,
        )

    def _waveform_breakpoints(self, stop_time_s: float) -> np.ndarray:
        """Sorted source-waveform corner times strictly inside (0, stop)."""
        compiled = self.compiled
        collected = set()
        for source in (*compiled.voltage_sources, *compiled.current_sources):
            hook = getattr(source.waveform, "breakpoints", None)
            if callable(hook):
                collected.update(
                    float(t) for t in hook(stop_time_s) if 0.0 < t < stop_time_s
                )
        return np.array(sorted(collected))

    def _mirror_capacitor_history(
        self,
        cap_history: np.ndarray,
        last_solution: np.ndarray,
        previous_solution: np.ndarray,
        last_timestep_s: float,
        integration: str,
    ) -> None:
        """Mirror the final companion history onto the capacitor elements.

        Keeps the legacy stamp path (the reference oracle) in agreement
        with the engine's state after a transient run, exactly as the
        per-element ``update_history()`` calls used to leave it.
        """
        compiled = self.compiled
        if not compiled.num_capacitors:
            return
        if integration == "trap":
            final_history = cap_history
        else:
            now = compiled._pad(last_solution)
            prev = compiled._pad(previous_solution)
            dv = (now[compiled.cap_a] - now[compiled.cap_b]) - (
                prev[compiled.cap_a] - prev[compiled.cap_b]
            )
            final_history = (compiled.cap_c / last_timestep_s) * dv
        for capacitor, history in zip(compiled.capacitors, final_history):
            capacitor._previous_current = float(history)


def get_engine(circuit: Circuit) -> AnalysisEngine:
    """The :class:`AnalysisEngine` cached on ``circuit``.

    Creating the engine is cheap; the compiled structure inside it is built
    lazily and recompiled only when the circuit's topology changes, so
    repeated analyses on one circuit (sweeps, parameter studies) share all
    precomputed index arrays.
    """
    engine = getattr(circuit, "_analysis_engine", None)
    if engine is None:
        engine = AnalysisEngine(circuit)
        circuit._analysis_engine = engine
    return engine


def sweep_many(
    circuit: Circuit,
    source: Union[VoltageSource, CurrentSource, str],
    families: Mapping[Hashable, Sequence[float]],
    configure: Optional[Callable[[Hashable], None]] = None,
    gmin: float = 1e-12,
    max_iterations: int = 200,
    solver: Union[None, str, LinearSolver] = None,
    newton: Optional[str] = None,
) -> Dict[Hashable, object]:
    """Run a family of DC sweeps through one compiled circuit.

    Convenience wrapper over :meth:`AnalysisEngine.sweep_many`; see there.
    """
    return get_engine(circuit).sweep_many(
        source,
        families,
        configure=configure,
        gmin=gmin,
        max_iterations=max_iterations,
        solver=solver,
        newton=newton,
    )
