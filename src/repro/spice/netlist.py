"""Circuit container and the modified-nodal-analysis (MNA) assembler.

A :class:`Circuit` owns named nodes and elements.  Node ``"0"`` (aliases
``"gnd"``, ``"GND"``) is ground and is not part of the unknown vector.  The
unknown vector of the MNA system is ``[node voltages..., branch currents...]``
where branches are added by elements that need a current unknown (voltage
sources).

Elements implement a single method::

    stamp(system, state)

which adds their linearized contribution at the present Newton iterate to the
:class:`MNASystem`.  ``state`` carries the previous iterate, the analysis
time and the transient integration context, so the same element code serves
DC and transient analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Canonical name of the ground node.
GROUND = "0"

_GROUND_ALIASES = {"0", "gnd", "GND", "ground"}


@dataclass
class AnalysisState:
    """Context handed to every element stamp call.

    Attributes
    ----------
    solution:
        Present Newton iterate: node voltages then branch currents.
    time_s:
        Simulation time (0 for DC analyses).
    timestep_s:
        Transient timestep; ``None`` during DC analyses (capacitors then
        stamp nothing but a tiny conductance to ground).
    previous_solution:
        Solution of the previous accepted timestep (transient only).
    integration:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    gmin:
        Minimum conductance added from every node to ground by the analyses
        for convergence robustness.
    """

    solution: np.ndarray
    time_s: float = 0.0
    timestep_s: Optional[float] = None
    previous_solution: Optional[np.ndarray] = None
    integration: str = "be"
    gmin: float = 1e-12

    def voltage(self, node_index: int) -> float:
        """Voltage of a node index (-1 is ground and always 0 V)."""
        if node_index < 0:
            return 0.0
        return float(self.solution[node_index])

    def previous_voltage(self, node_index: int) -> float:
        if node_index < 0 or self.previous_solution is None:
            return 0.0
        return float(self.previous_solution[node_index])


class MNASystem:
    """Dense MNA matrix/right-hand-side under assembly for one Newton step.

    ``matrix`` and ``rhs`` may be supplied by the caller so stamps can be
    accumulated into externally owned buffers; the compiled analysis engine
    uses this to route legacy ``stamp()`` calls of custom elements into its
    own assembly arrays.
    """

    def __init__(
        self,
        num_nodes: int,
        num_branches: int,
        matrix: Optional[np.ndarray] = None,
        rhs: Optional[np.ndarray] = None,
    ):
        size = num_nodes + num_branches
        self._num_nodes = num_nodes
        self.matrix = np.zeros((size, size)) if matrix is None else matrix
        self.rhs = np.zeros(size) if rhs is None else rhs

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    def add_conductance(self, node_a: int, node_b: int, conductance: float) -> None:
        """Stamp a conductance between two nodes (-1 for ground)."""
        if node_a >= 0:
            self.matrix[node_a, node_a] += conductance
        if node_b >= 0:
            self.matrix[node_b, node_b] += conductance
        if node_a >= 0 and node_b >= 0:
            self.matrix[node_a, node_b] -= conductance
            self.matrix[node_b, node_a] -= conductance

    def add_current(self, node: int, current: float) -> None:
        """Stamp a current flowing *into* a node [A]."""
        if node >= 0:
            self.rhs[node] += current

    def add_transconductance(
        self, out_plus: int, out_minus: int, ctrl_plus: int, ctrl_minus: int, gm: float
    ) -> None:
        """Stamp a VCCS: current ``gm * (v_ctrl_plus - v_ctrl_minus)`` from
        ``out_plus`` to ``out_minus``."""
        for out_node, out_sign in ((out_plus, 1.0), (out_minus, -1.0)):
            if out_node < 0:
                continue
            for ctrl_node, ctrl_sign in ((ctrl_plus, 1.0), (ctrl_minus, -1.0)):
                if ctrl_node < 0:
                    continue
                self.matrix[out_node, ctrl_node] += out_sign * ctrl_sign * gm

    def add_voltage_branch(
        self, branch: int, node_plus: int, node_minus: int, voltage: float
    ) -> None:
        """Stamp an ideal voltage source occupying branch index ``branch``."""
        row = self._num_nodes + branch
        if node_plus >= 0:
            self.matrix[row, node_plus] += 1.0
            self.matrix[node_plus, row] += 1.0
        if node_minus >= 0:
            self.matrix[row, node_minus] -= 1.0
            self.matrix[node_minus, row] -= 1.0
        self.rhs[row] += voltage

    def branch_index(self, branch: int) -> int:
        """Position of a branch current in the unknown vector."""
        return self._num_nodes + branch


class Circuit:
    """A netlist: named nodes plus elements.

    Elements are any objects exposing ``name`` and ``stamp(system, state)``;
    the ones shipped in :mod:`repro.spice.elements` cover the paper's needs.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._node_names: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._elements: List[object] = []
        self._element_names: Dict[str, object] = {}
        self._num_branches = 0
        self._revision = 0
        self._analysis_engine = None

    # ------------------------------------------------------------------ #
    # nodes
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> int:
        """Index of a named node, creating it on first use (-1 for ground)."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"node names must be non-empty strings, got {name!r}")
        if name in _GROUND_ALIASES:
            return -1
        if name not in self._node_index:
            self._node_index[name] = len(self._node_names)
            self._node_names.append(name)
            self._revision += 1
        return self._node_index[name]

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All non-ground node names in creation order."""
        return tuple(self._node_names)

    @property
    def num_nodes(self) -> int:
        return len(self._node_names)

    @property
    def num_branches(self) -> int:
        return self._num_branches

    @property
    def system_size(self) -> int:
        """Size of the MNA unknown vector."""
        return self.num_nodes + self.num_branches

    def node_index(self, name: str) -> int:
        """Index of an existing node; raises ``KeyError`` for unknown names."""
        if name in _GROUND_ALIASES:
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in _GROUND_ALIASES or name in self._node_index

    def allocate_branch(self) -> int:
        """Reserve a branch-current unknown (used by voltage sources)."""
        index = self._num_branches
        self._num_branches += 1
        self._revision += 1
        return index

    @property
    def revision(self) -> int:
        """Monotonic counter bumped whenever the topology changes.

        Compiled analysis structures cache against this value so they can
        detect that nodes, branches or elements were added and recompile.
        """
        return self._revision

    # ------------------------------------------------------------------ #
    # elements
    # ------------------------------------------------------------------ #

    def add(self, element) -> None:
        """Register an element object (anything with ``name`` and ``stamp``)."""
        name = getattr(element, "name", None)
        if not name:
            raise ValueError(f"element {element!r} has no name")
        if name in self._element_names:
            raise ValueError(f"duplicate element name {name!r}")
        if not callable(getattr(element, "stamp", None)):
            raise TypeError(f"element {name!r} does not implement stamp()")
        self._element_names[name] = element
        self._elements.append(element)
        self._revision += 1

    @property
    def elements(self) -> Tuple[object, ...]:
        return tuple(self._elements)

    def element(self, name: str):
        """Look up an element by name."""
        try:
            return self._element_names[name]
        except KeyError:
            raise KeyError(f"unknown element {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._element_names

    def __len__(self) -> int:
        return len(self._elements)

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #

    def assemble(self, state: AnalysisState) -> MNASystem:
        """Assemble the MNA system by calling every element's ``stamp()``.

        This is the legacy per-element reference path.  The analyses go
        through :class:`repro.spice.engine.AnalysisEngine`, which compiles
        the circuit once and assembles with vectorized scatter operations;
        this method remains as the compatibility path for custom elements
        and as the oracle the engine is tested (and benchmarked) against.
        """
        system = MNASystem(self.num_nodes, self.num_branches)
        for node in range(self.num_nodes):
            system.add_conductance(node, -1, state.gmin)
        for element in self._elements:
            element.stamp(system, state)
        return system

    def initial_solution(self) -> np.ndarray:
        """An all-zero initial Newton guess of the right size."""
        return np.zeros(self.system_size)

    def summary(self) -> str:
        """Short netlist summary used in reports."""
        kinds: Dict[str, int] = {}
        for element in self._elements:
            kind = type(element).__name__
            kinds[kind] = kinds.get(kind, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"{self.title}: {self.num_nodes} nodes, {len(self._elements)} elements ({parts})"
