"""DC operating-point analysis (thin frontend over the analysis engine).

The Newton iteration, gmin stepping and source stepping all live in
:class:`repro.spice.engine.AnalysisEngine`; this module keeps the stable
:func:`dc_operating_point` entry point and the :class:`OperatingPoint`
result type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.spice.netlist import AnalysisState, Circuit
from repro.spice.elements.sources import VoltageSource
from repro.spice.engine import get_engine
from repro.spice.solvers import LinearSolver


@dataclass(frozen=True)
class ConvergenceInfo:
    """How a DC solve converged (or failed).

    Attributes
    ----------
    strategy:
        ``"newton"`` when the plain damped Newton iteration converged,
        ``"gmin-stepping"`` / ``"source-stepping"`` when the corresponding
        fallback rescued the solve, ``"failed"`` when nothing converged.
    iterations:
        Total Newton iterations spent, summed across all fallback stages.
    final_max_update_v:
        Largest per-unknown update of the last Newton iteration [V]; this is
        the engine's convergence residual.
    factorizations / factorization_reuses:
        Numeric matrix factorizations performed during the solve, and solves
        served by an already-computed factorization (fingerprint cache hits
        plus ``newton="reuse"`` bypass rounds).  Zero for solver backends
        that do not factor (dense ``lstsq``-style paths).
    """

    strategy: str
    iterations: int
    final_max_update_v: float
    factorizations: int = 0
    factorization_reuses: int = 0

    @property
    def used_fallback(self) -> bool:
        """True when a fallback strategy produced (or attempted) the result."""
        return self.strategy != "newton"


@dataclass
class OperatingPoint:
    """Converged DC solution of a circuit.

    Attributes
    ----------
    circuit:
        The analysed circuit (kept for node-name lookups).
    solution:
        Raw MNA unknown vector (node voltages then branch currents).
    iterations:
        Newton iterations used (summed across fallback stages).
    converged:
        Whether the iteration met its tolerances.
    max_residual:
        Final maximum absolute update (V) across unknowns.
    convergence_info:
        Which strategy produced the solution (never silently: a solve that
        needed gmin or source stepping reports it here).
    """

    circuit: Circuit
    solution: np.ndarray
    iterations: int
    converged: bool
    max_residual: float
    convergence_info: Optional[ConvergenceInfo] = None

    def voltage(self, node_name: str) -> float:
        """Voltage of a named node [V]."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return 0.0
        return float(self.solution[index])

    def voltages(self) -> Dict[str, float]:
        """All node voltages by name."""
        return {name: self.voltage(name) for name in self.circuit.node_names}

    def source_current(self, source: "VoltageSource | str") -> float:
        """Current through a voltage source [A].

        Positive current flows from the positive terminal through the source
        to the negative terminal (the usual SPICE convention, so a supply
        sourcing current reports a negative value).
        """
        if isinstance(source, str):
            source = self.circuit.element(source)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects a VoltageSource or its name")
        return float(self.solution[source.branch_position(self.circuit)])

    def as_state(self) -> AnalysisState:
        """Wrap the solution in an :class:`AnalysisState` (for element queries)."""
        return AnalysisState(solution=self.solution.copy())


@dataclass
class BatchedOperatingPoints:
    """Stacked DC solutions of many same-pattern trials (one solve batch).

    Produced by :meth:`repro.spice.engine.AnalysisEngine.solve_dc_batched`:
    all trials share the circuit topology, differing only in their compiled
    parameter stacks, and the accessors extract whole per-trial columns at
    once.

    Attributes
    ----------
    circuit:
        The analysed circuit.
    solutions:
        ``(trials, n)`` stack of MNA solutions, one row per trial.
    iterations / converged / max_residuals:
        Per-trial Newton statistics (arrays of length ``trials``).
    strategies:
        Per-trial convergence strategy: ``"batched-newton"`` for trials the
        stacked Newton converged, otherwise the serial fallback's strategy
        (``"newton"`` / ``"gmin-stepping"`` / ``"source-stepping"`` /
        ``"failed"``).
    """

    circuit: Circuit
    solutions: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    max_residuals: np.ndarray
    strategies: Tuple[str, ...]
    #: Aggregate factorization counters over the whole batch (not per trial:
    #: stacked factorizations are shared bookkeeping across the live set).
    factorizations: int = 0
    factorization_reuses: int = 0

    def __len__(self) -> int:
        return self.solutions.shape[0]

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    def voltage(self, node_name: str) -> np.ndarray:
        """Voltage of a named node across all trials [V]."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros(len(self))
        return self.solutions[:, index].copy()

    def source_current(self, source: "VoltageSource | str") -> np.ndarray:
        """Current through a voltage source across all trials [A]."""
        if isinstance(source, str):
            source = self.circuit.element(source)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects a VoltageSource or its name")
        return self.solutions[:, source.branch_position(self.circuit)].copy()

    def point(self, trial: int) -> OperatingPoint:
        """One trial's result as an ordinary :class:`OperatingPoint`."""
        return OperatingPoint(
            circuit=self.circuit,
            solution=self.solutions[trial],
            iterations=int(self.iterations[trial]),
            converged=bool(self.converged[trial]),
            max_residual=float(self.max_residuals[trial]),
            convergence_info=ConvergenceInfo(
                strategy=self.strategies[trial],
                iterations=int(self.iterations[trial]),
                final_max_update_v=float(self.max_residuals[trial]),
            ),
        )


def dc_operating_point(
    circuit: Circuit,
    initial_guess: Optional[np.ndarray] = None,
    max_iterations: int = 300,
    tolerance_v: float = 1e-7,
    gmin: float = 1e-9,
    damping_v: float = 0.6,
    time_s: float = 0.0,
    solver: Union[None, str, LinearSolver] = None,
) -> OperatingPoint:
    """Solve the DC operating point of ``circuit`` by Newton-Raphson iteration.

    Delegates to the circuit's cached :class:`~repro.spice.engine.AnalysisEngine`:
    a plain damped Newton iteration is tried first, then gmin stepping (the
    node-to-ground conductance is strongly increased and relaxed decade by
    decade) and finally source stepping (all independent sources ramp from
    10 % to full drive with solution continuation).

    Parameters
    ----------
    circuit:
        The circuit to solve.
    initial_guess:
        Optional starting solution (e.g. the previous point of a DC sweep);
        zeros otherwise.
    max_iterations / tolerance_v:
        Newton controls.  Convergence is declared when the largest update of
        any unknown is below ``tolerance_v``.
    gmin:
        Conductance added from every node to ground.
    damping_v:
        Maximum per-iteration change of any unknown; larger Newton steps are
        clamped, which keeps the square-law devices from overshooting.
    time_s:
        Time at which time-dependent sources are evaluated (used by the
        transient analysis to reuse this routine for its initial point).
    solver:
        Linear-solver backend for the Newton solves (a name such as
        ``"sparse"`` or a :class:`~repro.spice.solvers.LinearSolver`
        instance; the engine default when omitted).

    .. deprecated::
        Build a :class:`repro.api.DCOp` spec and run it through
        :meth:`repro.api.Session.run` instead (see the README migration
        table); this wrapper remains for compatibility and will keep
        delegating to the engine.
    """
    import warnings

    warnings.warn(
        "dc_operating_point() is deprecated: build a repro.api.DCOp spec and "
        "run it through repro.api.Session.run() (see the README migration "
        "table)",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_engine(circuit).solve_dc(
        initial_guess=initial_guess,
        max_iterations=max_iterations,
        tolerance_v=tolerance_v,
        gmin=gmin,
        damping_v=damping_v,
        time_s=time_s,
        solver=solver,
    )
