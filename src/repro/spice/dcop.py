"""Newton-Raphson DC operating-point analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.netlist import AnalysisState, Circuit
from repro.spice.elements.sources import VoltageSource


@dataclass
class OperatingPoint:
    """Converged DC solution of a circuit.

    Attributes
    ----------
    circuit:
        The analysed circuit (kept for node-name lookups).
    solution:
        Raw MNA unknown vector (node voltages then branch currents).
    iterations:
        Newton iterations used.
    converged:
        Whether the iteration met its tolerances.
    max_residual:
        Final maximum absolute update (V) across unknowns.
    """

    circuit: Circuit
    solution: np.ndarray
    iterations: int
    converged: bool
    max_residual: float

    def voltage(self, node_name: str) -> float:
        """Voltage of a named node [V]."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return 0.0
        return float(self.solution[index])

    def voltages(self) -> Dict[str, float]:
        """All node voltages by name."""
        return {name: self.voltage(name) for name in self.circuit.node_names}

    def source_current(self, source: "VoltageSource | str") -> float:
        """Current through a voltage source [A].

        Positive current flows from the positive terminal through the source
        to the negative terminal (the usual SPICE convention, so a supply
        sourcing current reports a negative value).
        """
        if isinstance(source, str):
            source = self.circuit.element(source)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects a VoltageSource or its name")
        return float(self.solution[source.branch_position(self.circuit)])

    def as_state(self) -> AnalysisState:
        """Wrap the solution in an :class:`AnalysisState` (for element queries)."""
        return AnalysisState(solution=self.solution.copy())


def _newton_loop(
    circuit: Circuit,
    solution: np.ndarray,
    max_iterations: int,
    tolerance_v: float,
    gmin: float,
    damping_v: float,
    time_s: float,
):
    """One Newton-Raphson run at a fixed ``gmin``.

    Returns ``(solution, iterations, converged, max_update)``.
    """
    converged = False
    max_update = float("inf")
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        state = AnalysisState(solution=solution, time_s=time_s, timestep_s=None, gmin=gmin)
        system = circuit.assemble(state)
        try:
            new_solution = np.linalg.solve(system.matrix, system.rhs)
        except np.linalg.LinAlgError:
            # Singular matrix: bump gmin an order of magnitude and retry.
            gmin = max(gmin * 10.0, 1e-12)
            continue

        update = new_solution - solution
        max_update = float(np.max(np.abs(update))) if update.size else 0.0
        # Per-unknown clamp: a runaway node (e.g. a floating terminal hanging
        # off a cut-off transistor) must not stall the rest of the circuit.
        update = np.clip(update, -damping_v, damping_v)
        solution = solution + update

        if max_update < tolerance_v:
            converged = True
            break
    return solution, iteration, converged, max_update


def dc_operating_point(
    circuit: Circuit,
    initial_guess: Optional[np.ndarray] = None,
    max_iterations: int = 300,
    tolerance_v: float = 1e-7,
    gmin: float = 1e-9,
    damping_v: float = 0.6,
    time_s: float = 0.0,
) -> OperatingPoint:
    """Solve the DC operating point of ``circuit`` by Newton-Raphson iteration.

    A plain damped Newton iteration is tried first.  If it fails to converge
    (large lattice circuits occasionally fall into small limit cycles around
    the cutoff of floating-terminal transistors), the solver falls back to
    gmin stepping: it re-solves with a strongly increased node-to-ground
    conductance — which makes the problem almost linear — and then relaxes
    the extra conductance decade by decade, reusing each solution as the next
    starting point.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    initial_guess:
        Optional starting solution (e.g. the previous point of a DC sweep);
        zeros otherwise.
    max_iterations / tolerance_v:
        Newton controls.  Convergence is declared when the largest update of
        any unknown is below ``tolerance_v``.
    gmin:
        Conductance added from every node to ground.
    damping_v:
        Maximum per-iteration change of any unknown; larger Newton steps are
        clamped, which keeps the square-law devices from overshooting.
    time_s:
        Time at which time-dependent sources are evaluated (used by the
        transient analysis to reuse this routine for its initial point).
    """
    if circuit.system_size == 0:
        raise ValueError("the circuit has no unknowns to solve for")
    solution = (
        initial_guess.copy() if initial_guess is not None else circuit.initial_solution()
    )
    if solution.shape != (circuit.system_size,):
        raise ValueError(
            f"initial guess has shape {solution.shape}, expected ({circuit.system_size},)"
        )

    solution, iterations, converged, max_update = _newton_loop(
        circuit, solution, max_iterations, tolerance_v, gmin, damping_v, time_s
    )
    total_iterations = iterations

    if not converged:
        # gmin stepping: start almost linear, relax towards the target gmin.
        # Intermediate stages only provide the starting point of the next
        # stage; what matters is that the final stage (at the target gmin)
        # converges.
        stepped_solution = circuit.initial_solution()
        stepping_gmins = [1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, gmin]
        final_ok = False
        for step_gmin in stepping_gmins:
            stepped_solution, used, step_ok, max_update = _newton_loop(
                circuit, stepped_solution, max_iterations, tolerance_v, step_gmin, damping_v, time_s
            )
            total_iterations += used
            final_ok = step_ok
        if final_ok:
            solution = stepped_solution
            converged = True

    return OperatingPoint(
        circuit=circuit,
        solution=solution,
        iterations=total_iterations,
        converged=converged,
        max_residual=max_update,
    )
