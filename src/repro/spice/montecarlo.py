"""Monte Carlo analysis on the compiled engine: perturb arrays, not netlists.

A variability study re-solves one circuit hundreds of times with slightly
different device parameters.  Re-walking the netlist (or mutating element
objects) per trial would pay the full compilation cost every time; instead,
:class:`MonteCarloEngine` compiles the circuit once and runs each trial by
swapping the :class:`~repro.spice.engine.CompiledCircuit` parameter vectors
in place through the engine's parameter-overlay facility
(:meth:`~repro.spice.engine.CompiledCircuit.set_parameter_overlay`).  The
perturbable vectors are ``mos_vth``, ``mos_beta``, ``mos_lambda``,
``resistor_ohm``, ``cap_c`` and the independent-source multipliers
``vsource_scale`` / ``isource_scale``.

Reproducibility
---------------
Every trial draws from its own :class:`numpy.random.SeedSequence` substream,
constructed as ``SeedSequence(entropy=seed, spawn_key=(trial,))`` — exactly
the child that ``SeedSequence(seed).spawn(...)`` would hand out for that
trial index.  Trial randomness therefore depends only on ``(seed, trial)``,
never on how trials are chunked across workers, so a serial run and a
4-worker process-pool run produce bit-identical results.

Parallelism
-----------
:meth:`MonteCarloEngine.run` shards trials across a
:class:`~concurrent.futures.ProcessPoolExecutor` in contiguous chunks.  The
circuit — including its compiled state — is pickled to each worker once (at
pool start-up, through the initializer), so workers skip compilation
entirely and each chunk only pays the overlay swap plus the solve.  The
``analysis`` callable must be picklable: a module-level function or a
:func:`functools.partial` over one.

:func:`parallel_sweep_many` applies the same sharding to independent
``sweep_many`` families: each family is an independent DC sweep after the
seed handoff, so families fan out across processes and the parent
reassembles ordinary :class:`~repro.spice.dcsweep.DCSweepResult` objects.

Batched solves
--------------
Same-pattern trials need not be solved one at a time at all:
:meth:`MonteCarloEngine.run_batched_dc` stacks every trial's parameter
vectors (``(trials, count)`` per parameter), assembles ``(trials, n, n)``
Jacobians vectorized over the stack and solves each Newton round through
the batched dense backend of :mod:`repro.spice.solvers` — one LAPACK call
per round instead of one per trial.  :meth:`MonteCarloEngine.run_batched_transient`
extends the same idea along the time axis: all trials march a fixed-step
transient in *lockstep*, evaluating the stimulus waveforms once per step
and freezing each trial within a step the moment it converges.  The
per-trial arithmetic is bit-identical to the serial path in both cases,
so results match ``run`` exactly (and reproduce the nominal solve bit for
bit at zero spread).

Example — a 500-trial XOR3 variability study end to end::

    from repro.circuits import build_lattice_circuit, InputSequence
    from repro.core.library import xor3_lattice_3x3
    from repro.spice import Gaussian, MonteCarloEngine

    bench = build_lattice_circuit(
        xor3_lattice_3x3(),
        input_sequence=InputSequence.exhaustive(("a", "b", "c"), step_duration_s=40e-9),
    )

    def settled_low(engine, trial):
        op = engine.solve_dc(refresh=False)
        return {"out_v": op.solution[engine.circuit.node_index("out")]}

    mc = MonteCarloEngine(
        bench.circuit,
        perturbations={
            "mos_vth": Gaussian(sigma=0.030),            # 30 mV local Vth spread
            "mos_beta": Gaussian(sigma=0.05, relative=True, correlated=True),
        },
        seed=2019,
    )
    result = mc.run(settled_low, trials=500, workers=4)
    print(result.summary("out_v").percentiles[50.0])

(The full transient version of this study — delay distributions of the
paper's Fig. 11 circuit — lives in
:mod:`repro.experiments.variability_xor3`.)
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.spice.engine import AnalysisEngine, get_engine
from repro.spice.netlist import Circuit

#: Signature of a trial analysis: ``(engine, trial_index) -> metrics``.
TrialAnalysis = Callable[[AnalysisEngine, int], Mapping[str, float]]


# ---------------------------------------------------------------------- #
# distributions
# ---------------------------------------------------------------------- #


class Distribution:
    """Base class of the pluggable perturbation distributions.

    A distribution turns the nominal value vector of one compiled parameter
    (one entry per element) into a perturbed vector, drawing from the
    trial's dedicated random generator.  ``correlated=True`` draws a single
    variate shared by every element (global process shift); otherwise each
    element gets an independent draw (local mismatch).

    All shipped distributions reproduce the nominal vector *bit-for-bit*
    when their spread parameter is zero, which the test-suite relies on.
    """

    def sample(self, rng: np.random.Generator, nominal: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def _draws(rng: np.random.Generator, count: int, correlated: bool, uniform: bool) -> np.ndarray:
    if uniform:
        draw = rng.uniform(-1.0, 1.0, size=1 if correlated else count)
    else:
        draw = rng.standard_normal(size=1 if correlated else count)
    if correlated:
        draw = np.repeat(draw, count)
    return draw


@dataclass(frozen=True)
class Gaussian(Distribution):
    """Additive normal perturbation: ``nominal + sigma * N(0, 1)``.

    ``relative=True`` interprets ``sigma`` as a fraction of each nominal
    value's magnitude instead of an absolute spread.
    """

    sigma: float
    relative: bool = False
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: np.random.Generator, nominal: np.ndarray) -> np.ndarray:
        draw = _draws(rng, nominal.size, self.correlated, uniform=False)
        scale = self.sigma * np.abs(nominal) if self.relative else self.sigma
        return nominal + scale * draw


@dataclass(frozen=True)
class Uniform(Distribution):
    """Additive uniform perturbation: ``nominal + U(-halfwidth, +halfwidth)``."""

    halfwidth: float
    relative: bool = False
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.halfwidth < 0.0:
            raise ValueError("halfwidth must be non-negative")

    def sample(self, rng: np.random.Generator, nominal: np.ndarray) -> np.ndarray:
        draw = _draws(rng, nominal.size, self.correlated, uniform=True)
        scale = self.halfwidth * np.abs(nominal) if self.relative else self.halfwidth
        return nominal + scale * draw


@dataclass(frozen=True)
class Lognormal(Distribution):
    """Multiplicative perturbation: ``nominal * exp(sigma_ln * N(0, 1))``.

    The natural choice for positive physical quantities (resistances,
    capacitances, beta): the perturbed values never change sign and the
    spread is relative by construction.
    """

    sigma_ln: float
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.sigma_ln < 0.0:
            raise ValueError("sigma_ln must be non-negative")

    def sample(self, rng: np.random.Generator, nominal: np.ndarray) -> np.ndarray:
        draw = _draws(rng, nominal.size, self.correlated, uniform=False)
        return nominal * np.exp(self.sigma_ln * draw)


# ---------------------------------------------------------------------- #
# results
# ---------------------------------------------------------------------- #


@dataclass
class MonteCarloResult:
    """Per-trial metric records plus distribution accessors.

    Attributes
    ----------
    trials / seed:
        Run configuration (kept so results are self-describing).
    records:
        One metrics mapping per trial, in trial order — identical regardless
        of how the run was sharded across workers.
    """

    trials: int
    seed: int
    records: List[Dict[str, float]]
    _columns: Dict[str, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def keys(self) -> Tuple[str, ...]:
        """Metric names present in the records."""
        return tuple(self.records[0]) if self.records else ()

    def samples(self, key: str) -> np.ndarray:
        """All trial values of one metric, in trial order."""
        column = self._columns.get(key)
        if column is None:
            column = np.array([record[key] for record in self.records], dtype=float)
            self._columns[key] = column
        return column

    def summary(self, key: str, percentiles: Sequence[float] = (1, 5, 25, 50, 75, 95, 99)):
        """Distribution summary of one metric (see :mod:`repro.analysis.variability`)."""
        from repro.analysis.variability import summarize_samples

        return summarize_samples(self.samples(key), percentiles=percentiles)

    def yield_fraction(
        self,
        key: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> float:
        """Fraction of trials whose metric lies inside ``[lower, upper]``."""
        from repro.analysis.variability import yield_fraction

        return yield_fraction(self.samples(key), lower=lower, upper=upper)


# ---------------------------------------------------------------------- #
# trial execution (shared by the serial path and the pool workers)
# ---------------------------------------------------------------------- #


def trial_generator(seed: int, trial: int) -> np.random.Generator:
    """The dedicated random generator of one trial.

    Equivalent to child ``trial`` of ``SeedSequence(seed).spawn(...)`` but
    constructed directly, so a worker handling trials ``[100, 150)`` never
    has to spawn (or even know about) the first hundred children.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(trial,)))


def sample_overlay(
    perturbations: Mapping[str, Distribution],
    nominal: Mapping[str, np.ndarray],
    rng: np.random.Generator,
) -> Dict[str, np.ndarray]:
    """Draw one trial's parameter overlay (deterministic in iteration order)."""
    return {
        name: perturbations[name].sample(rng, np.asarray(nominal[name], dtype=float))
        for name in sorted(perturbations)
    }


def _effective_nominal(compiled) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """The trial centers and the base overlay to compose trials with.

    A pre-existing overlay (e.g. an :func:`repro.circuits.corners.applied_corner`
    block) shifts the trial centers: Monte Carlo then samples *around the
    corner*, and the corner overlay is restored — not cleared — when the
    trials finish.
    """
    base_overlay = dict(compiled._overlay) if compiled._overlay else {}
    nominal = compiled.nominal_parameters()
    nominal.update(base_overlay)
    return nominal, base_overlay


def _run_trial_block(
    circuit: Circuit,
    perturbations: Mapping[str, Distribution],
    seed: int,
    analysis: TrialAnalysis,
    start: int,
    count: int,
) -> List[Dict[str, float]]:
    """Run trials ``[start, start + count)`` on one (compiled) circuit."""
    engine = get_engine(circuit)
    compiled = engine.compiled
    compiled.refresh_values()
    nominal, base_overlay = _effective_nominal(compiled)
    records: List[Dict[str, float]] = []
    try:
        for trial in range(start, start + count):
            rng = trial_generator(seed, trial)
            overlay = sample_overlay(perturbations, nominal, rng)
            try:
                compiled.set_parameter_overlay({**base_overlay, **overlay})
            except ValueError as error:
                raise ValueError(
                    f"trial {trial} sampled an invalid parameter set ({error}); "
                    "additive distributions can cross zero on positive-only "
                    "parameters — use Lognormal for resistor_ohm/cap_c, or "
                    "shrink the spread"
                ) from error
            metrics = analysis(engine, trial)
            if not isinstance(metrics, Mapping):
                raise TypeError(
                    "a trial analysis must return a mapping of metric name to value, "
                    f"got {type(metrics).__name__}"
                )
            records.append(dict(metrics))
    finally:
        if base_overlay:
            compiled.set_parameter_overlay(base_overlay)
        else:
            compiled.clear_parameter_overlay()
    return records


_WORKER_STATE: Optional[Tuple[Circuit, Mapping[str, Distribution], int, TrialAnalysis]] = None


def _worker_init(payload) -> None:
    global _WORKER_STATE
    _WORKER_STATE = payload


def _worker_run_block(block: Tuple[int, int]) -> List[Dict[str, float]]:
    circuit, perturbations, seed, analysis = _WORKER_STATE
    return _run_trial_block(circuit, perturbations, seed, analysis, block[0], block[1])


def _chunk_blocks(trials: int, workers: int, chunksize: Optional[int]) -> List[Tuple[int, int]]:
    if chunksize is None:
        # A few chunks per worker balances load without drowning the pool
        # in tiny tasks.
        chunksize = max(1, math.ceil(trials / (workers * 4)))
    return [(start, min(chunksize, trials - start)) for start in range(0, trials, chunksize)]


# ---------------------------------------------------------------------- #
# the Monte Carlo engine
# ---------------------------------------------------------------------- #


class MonteCarloEngine:
    """N-trial variability analysis over one compiled circuit.

    Parameters
    ----------
    circuit:
        The circuit under study; compiled once (through its cached
        :class:`~repro.spice.engine.AnalysisEngine`) and perturbed in place
        per trial.
    perturbations:
        Mapping from compiled parameter name (see
        :data:`repro.spice.engine.PERTURBABLE_PARAMETERS`) to the
        :class:`Distribution` perturbing it.
    seed:
        Root entropy of the per-trial substreams.  Two runs with the same
        seed and trial count are bit-identical, whatever the worker count.

    Runs compose with an active parameter overlay: inside an
    :func:`repro.circuits.corners.applied_corner` block, trials sample
    around the corner-shifted values and the corner overlay is restored
    when the trials finish — Monte Carlo *at* a corner, not instead of it.
    """

    def __init__(
        self,
        circuit: Circuit,
        perturbations: Mapping[str, Distribution],
        seed: int = 0,
    ):
        if not perturbations:
            raise ValueError("at least one perturbation is required")
        compiled = get_engine(circuit).compiled
        lengths = compiled._parameter_lengths()
        for name, distribution in perturbations.items():
            if name not in lengths:
                raise ValueError(
                    f"unknown parameter {name!r}; expected one of {sorted(lengths)}"
                )
            if lengths[name] == 0:
                raise ValueError(
                    f"cannot perturb {name!r}: the circuit has no such elements"
                )
            if not isinstance(distribution, Distribution):
                raise TypeError(f"perturbation for {name!r} is not a Distribution")
        self.circuit = circuit
        self.perturbations: Dict[str, Distribution] = dict(perturbations)
        self.seed = int(seed)

    def sample_trial_overlay(self, trial: int) -> Dict[str, np.ndarray]:
        """The exact parameter overlay trial ``trial`` would run with."""
        compiled = get_engine(self.circuit).compiled
        compiled.refresh_values()
        nominal, base_overlay = _effective_nominal(compiled)
        sampled = sample_overlay(
            self.perturbations, nominal, trial_generator(self.seed, trial)
        )
        return {**base_overlay, **sampled}

    def sample_stacked_overlays(self, trials: int) -> Dict[str, np.ndarray]:
        """All trial overlays stacked: parameter name -> ``(trials, count)``.

        Row ``t`` of every stack is exactly :meth:`sample_trial_overlay`'s
        value for trial ``t`` (same per-trial seed substreams), so the
        batched and per-trial paths perturb identically.  Parameters only
        present in a base overlay (e.g. an active corner) are broadcast
        across all trials.
        """
        if trials <= 0:
            raise ValueError("at least one trial is required")
        compiled = get_engine(self.circuit).compiled
        compiled.refresh_values()
        nominal, base_overlay = _effective_nominal(compiled)
        names = sorted(set(base_overlay) | set(self.perturbations))
        stacks = {
            name: np.empty((trials, np.asarray(nominal[name]).size)) for name in names
        }
        for trial in range(trials):
            overlay = dict(base_overlay)
            overlay.update(
                sample_overlay(
                    self.perturbations, nominal, trial_generator(self.seed, trial)
                )
            )
            for name in names:
                stacks[name][trial] = overlay[name]
        return stacks

    def run_batched_dc(
        self,
        trials: int,
        initial_guess: Optional[np.ndarray] = None,
        solver: Any = "batched",
        max_iterations: int = 300,
        tolerance_v: float = 1e-7,
        gmin: float = 1e-9,
        damping_v: float = 0.6,
        time_s: float = 0.0,
        newton: Optional[str] = None,
        threads: Any = None,
    ):
        """Solve all trials' DC operating points through the batched backend.

        Instead of ``trials`` per-trial overlay swaps and dense solves, the
        sampled parameter stacks are handed to
        :meth:`~repro.spice.engine.AnalysisEngine.solve_dc_batched`, which
        assembles ``(trials, n, n)`` Jacobians vectorized over the stack
        and solves each Newton round in one batched LAPACK call.  The
        per-trial arithmetic is bit-identical to the serial path (same seed
        substreams, same assembly order, same LAPACK routine per system),
        so at zero spread every trial reproduces the nominal solve exactly;
        trials the plain batched Newton cannot converge fall back to the
        serial ladders one by one.

        The Newton-control defaults match :meth:`AnalysisEngine.solve_dc`,
        so a serial trial analysis calling ``engine.solve_dc(refresh=False)``
        and this path see identical iterations.

        Returns a :class:`~repro.spice.dcop.BatchedOperatingPoints`.
        """
        stacks = self.sample_stacked_overlays(trials)
        return get_engine(self.circuit).solve_dc_batched(
            stacks,
            trials=trials,
            initial_guess=initial_guess,
            max_iterations=max_iterations,
            tolerance_v=tolerance_v,
            gmin=gmin,
            damping_v=damping_v,
            time_s=time_s,
            refresh=False,
            solver=solver,
            newton=newton,
            threads=threads,
        )

    def run_batched_transient(
        self,
        trials: int,
        stop_time_s: float,
        timestep_s: float,
        integration: str = "be",
        max_newton_iterations: int = 100,
        tolerance_v: float = 1e-6,
        gmin: float = 1e-9,
        use_initial_conditions: bool = False,
        solver: Any = "batched",
        newton: Optional[str] = None,
        threads: Any = None,
    ):
        """March all trials' transients in lockstep on one fixed-step grid.

        The batched counterpart of a :meth:`run` whose analysis calls
        ``engine.solve_transient(stop_time_s, timestep_s)`` per trial: the
        sampled parameter stacks (same :meth:`sample_stacked_overlays`
        substreams, so trial ``t`` perturbs identically) are handed to
        :meth:`~repro.spice.engine.AnalysisEngine.solve_transient_batched`,
        which advances the whole ``(trials, n)`` stack one shared timestep
        at a time — waveforms evaluated once per step, each Newton round
        one batched LAPACK call, converged trials frozen within the step.
        Every trial's waveform is bit-identical to the per-trial path on
        the same grid (trials the lockstep march cannot converge are
        re-run through the serial ``solve_transient`` ladders).

        The Newton-control defaults match
        :meth:`~repro.spice.engine.AnalysisEngine.solve_transient`, so a
        serial trial analysis calling
        ``engine.solve_transient(stop_time_s, timestep_s)`` and this path
        produce identical waveforms.  Adaptive stepping cannot be batched
        (lockstep needs the shared grid) — use :meth:`run` for adaptive
        per-trial marches.

        Returns a :class:`~repro.spice.transient.BatchedTransientResult`.
        """
        stacks = self.sample_stacked_overlays(trials)
        return get_engine(self.circuit).solve_transient_batched(
            stop_time_s,
            timestep_s,
            params=stacks,
            trials=trials,
            integration=integration,
            max_newton_iterations=max_newton_iterations,
            tolerance_v=tolerance_v,
            gmin=gmin,
            use_initial_conditions=use_initial_conditions,
            refresh=False,
            solver=solver,
            newton=newton,
            threads=threads,
        )

    def run_per_trial_transient(
        self,
        trials: int,
        stop_time_s: float,
        timestep_s: float,
        integration: str = "be",
        max_newton_iterations: int = 100,
        tolerance_v: float = 1e-6,
        gmin: float = 1e-9,
        use_initial_conditions: bool = False,
        solver: Any = None,
        newton: Optional[str] = None,
    ):
        """March each trial's transient serially, one overlay swap per trial.

        The per-trial counterpart (and bit-for-bit oracle) of
        :meth:`run_batched_transient`: same seeded
        :meth:`sample_stacked_overlays` substreams, same fixed-step grid,
        same :class:`~repro.spice.transient.BatchedTransientResult` shape —
        only the marching differs (one full ``solve_transient`` per trial
        instead of the lockstep batch).  A pre-existing base overlay (e.g.
        an active corner) is composed into every trial and restored when
        the trials finish.
        """
        from repro.spice.transient import BatchedTransientResult

        engine = get_engine(self.circuit)
        compiled = engine.compiled
        stacks = self.sample_stacked_overlays(trials)
        saved_overlay = dict(compiled._overlay) if compiled._overlay else None
        rows = []
        converged = np.zeros(trials, dtype=bool)
        iterations = np.zeros(trials, dtype=int)
        residuals = np.zeros(trials, dtype=float)
        strategies = []
        factorizations = 0
        reuses = 0
        time_s = None
        try:
            for trial in range(trials):
                compiled.set_parameter_overlay(
                    {name: stack[trial] for name, stack in stacks.items()}
                )
                result = engine.solve_transient(
                    stop_time_s,
                    timestep_s,
                    integration=integration,
                    max_newton_iterations=max_newton_iterations,
                    tolerance_v=tolerance_v,
                    gmin=gmin,
                    use_initial_conditions=use_initial_conditions,
                    solver=solver,
                    newton=newton,
                )
                info = result.convergence_info
                time_s = result.time_s.copy()
                rows.append(result.solutions)
                converged[trial] = result.converged
                iterations[trial] = info.newton_iterations
                residuals[trial] = info.max_newton_residual_v
                strategies.append(info.strategy)
                factorizations += info.factorizations
                reuses += info.factorization_reuses
        finally:
            if saved_overlay is not None:
                compiled.set_parameter_overlay(saved_overlay)
            else:
                compiled.clear_parameter_overlay()
        return BatchedTransientResult(
            circuit=self.circuit,
            time_s=time_s,
            solutions=np.stack(rows),
            converged=converged,
            newton_iterations=iterations,
            max_residuals=residuals,
            strategies=tuple(strategies),
            factorizations=factorizations,
            factorization_reuses=reuses,
        )

    def run(
        self,
        analysis: TrialAnalysis,
        trials: int,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ) -> MonteCarloResult:
        """Run ``trials`` perturbed solves and collect the metric records.

        Parameters
        ----------
        analysis:
            ``(engine, trial_index) -> {metric: value}``; called with the
            overlay already applied.  Must be picklable when ``workers > 1``.
        trials:
            Number of trials.
        workers:
            ``None``/``0``/``1`` runs serially in this process; larger
            values shard trial chunks across a process pool, shipping the
            compiled circuit to each worker once.
        chunksize:
            Trials per pool task (defaults to about four chunks per worker).
        """
        if trials <= 0:
            raise ValueError("at least one trial is required")
        if workers is None or workers <= 1:
            records = _run_trial_block(
                self.circuit, self.perturbations, self.seed, analysis, 0, trials
            )
        else:
            # Compile before pickling so every worker inherits the compiled
            # index arrays instead of rebuilding them.
            get_engine(self.circuit).compiled.refresh_values()
            payload = (self.circuit, self.perturbations, self.seed, analysis)
            blocks = _chunk_blocks(trials, workers, chunksize)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(blocks)),
                initializer=_worker_init,
                initargs=(payload,),
            ) as pool:
                records = [
                    record
                    for block_records in pool.map(_worker_run_block, blocks)
                    for record in block_records
                ]
        return MonteCarloResult(trials=trials, seed=self.seed, records=records)


# ---------------------------------------------------------------------- #
# parallel sweep families
# ---------------------------------------------------------------------- #

_SWEEP_STATE = None


def _sweep_worker_init(payload) -> None:
    global _SWEEP_STATE
    _SWEEP_STATE = payload


def _run_sweep_family(state, item):
    label, values = item
    circuit, source_name, configure, gmin, max_iterations = state
    if configure is not None:
        configure(circuit, label)
    sweep = get_engine(circuit).dc_sweep(
        source_name, values, gmin=gmin, max_iterations=max_iterations
    )
    return (
        label,
        sweep.values,
        sweep.solutions,
        [point.iterations for point in sweep.points],
        [point.converged for point in sweep.points],
        [point.max_residual for point in sweep.points],
        [point.convergence_info for point in sweep.points],
    )


def _sweep_worker_run(item):
    return _run_sweep_family(_SWEEP_STATE, item)


def parallel_sweep_many(
    circuit: Circuit,
    source: Union[str, Any],
    families: Mapping[Hashable, Sequence[float]],
    configure: Optional[Callable[[Circuit, Hashable], None]] = None,
    workers: int = 2,
    gmin: float = 1e-12,
    max_iterations: int = 200,
) -> Dict[Hashable, Any]:
    """Fan a family of DC sweeps out across worker processes.

    The serial :func:`repro.spice.engine.sweep_many` chains families through
    one compiled circuit with continuation seeding; after that seed handoff
    the families are independent, so this variant ships the compiled circuit
    to a process pool and runs one family per task.  Families cold-start
    (no cross-family seeding), which may cost a few extra Newton iterations
    per first point but returns the same converged solutions.

    ``configure(circuit, label)`` — note the explicit circuit argument,
    unlike the serial version's closure — must fully reconfigure the
    circuit copy it is handed for a family and be picklable.  It always
    operates on a pickled copy (even with ``workers=1``), so the caller's
    circuit is never reconfigured behind its back, whatever the worker
    count.

    Returns an ordered dict of :class:`~repro.spice.dcsweep.DCSweepResult`
    keyed by label, all bound to the *parent's* circuit.
    """
    import inspect
    import pickle

    from repro.spice.dcop import OperatingPoint
    from repro.spice.dcsweep import DCSweepResult

    if configure is not None:
        # Fail at the call site, not inside a worker: a serial sweep_many
        # closure (one ``label`` argument) is the likely mistake here.
        try:
            signature = inspect.signature(configure)
            signature.bind(None, None)
        except TypeError:
            raise TypeError(
                "parallel_sweep_many's configure takes (circuit, label) — "
                "unlike the serial sweep_many closure, which only takes the "
                "label — and must be a picklable module-level callable"
            ) from None
        except ValueError:
            pass  # no introspectable signature (builtins); let it run

    source_name = source if isinstance(source, str) else source.name
    get_engine(circuit).compiled.refresh_values()
    payload = (circuit, source_name, configure, gmin, max_iterations)
    items = [
        (label, np.asarray(list(values), dtype=float)) for label, values in families.items()
    ]
    if not items:
        return {}

    if workers <= 1:
        local_state = None
        if configure is not None:
            # Same isolation as the pooled path: configure() runs on a copy.
            local_state = pickle.loads(pickle.dumps(payload))
        raw = [_run_sweep_family(local_state or payload, item) for item in items]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)),
            initializer=_sweep_worker_init,
            initargs=(payload,),
        ) as pool:
            raw = list(pool.map(_sweep_worker_run, items))

    results: Dict[Hashable, Any] = {}
    for label, values, solutions, iterations, converged, residuals, infos in raw:
        points = [
            OperatingPoint(
                circuit=circuit,
                solution=solutions[i],
                iterations=iterations[i],
                converged=converged[i],
                max_residual=residuals[i],
                convergence_info=infos[i],
            )
            for i in range(len(values))
        ]
        results[label] = DCSweepResult(circuit=circuit, values=values, points=points)
    return results
