"""DC sweep analysis: repeated operating points with solution continuation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.spice.dcop import OperatingPoint, dc_operating_point
from repro.spice.elements.sources import CurrentSource, VoltageSource
from repro.spice.netlist import Circuit


@dataclass
class DCSweepResult:
    """Result of a DC sweep.

    Attributes
    ----------
    circuit:
        The swept circuit.
    values:
        The swept source values.
    points:
        The converged :class:`OperatingPoint` of every sweep value.
    """

    circuit: Circuit
    values: np.ndarray
    points: List[OperatingPoint]

    def voltage(self, node_name: str) -> np.ndarray:
        """Voltage of a node across the sweep [V]."""
        return np.array([point.voltage(node_name) for point in self.points])

    def source_current(self, source_name: str) -> np.ndarray:
        """Current through a voltage source across the sweep [A]."""
        return np.array([point.source_current(source_name) for point in self.points])

    @property
    def all_converged(self) -> bool:
        return all(point.converged for point in self.points)

    def find_value_for_voltage(self, node_name: str, target_v: float) -> float:
        """Swept value at which a node voltage crosses ``target_v`` (interpolated)."""
        voltages = self.voltage(node_name)
        return _interpolate_crossing(self.values, voltages, target_v)

    def find_value_for_current(self, source_name: str, target_a: float) -> float:
        """Swept value at which a source current magnitude crosses ``target_a``."""
        currents = np.abs(self.source_current(source_name))
        return _interpolate_crossing(self.values, currents, target_a)


def _interpolate_crossing(xs: np.ndarray, ys: np.ndarray, target: float) -> float:
    """First x at which y crosses target, by linear interpolation (nan if never)."""
    for i in range(1, len(xs)):
        y0, y1 = ys[i - 1], ys[i]
        if (y0 - target) * (y1 - target) <= 0.0 and y0 != y1:
            fraction = (target - y0) / (y1 - y0)
            return float(xs[i - 1] + fraction * (xs[i] - xs[i - 1]))
    return float("nan")


def dc_sweep(
    circuit: Circuit,
    source: Union[VoltageSource, CurrentSource, str],
    values: Sequence[float],
    gmin: float = 1e-12,
    max_iterations: int = 200,
) -> DCSweepResult:
    """Sweep an independent source and solve the operating point at each value.

    Each point starts the Newton iteration from the previous point's solution
    (continuation), which is both faster and more robust than starting from
    zero for every value.
    """
    if isinstance(source, str):
        source = circuit.element(source)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise TypeError("dc_sweep needs a VoltageSource or CurrentSource (or its name)")
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise ValueError("at least one sweep value is required")

    points: List[OperatingPoint] = []
    guess: Optional[np.ndarray] = None
    original_waveform = source.waveform
    try:
        for value in values_array:
            source.set_level(float(value))
            point = dc_operating_point(
                circuit, initial_guess=guess, gmin=gmin, max_iterations=max_iterations
            )
            points.append(point)
            guess = point.solution.copy()
    finally:
        source.waveform = original_waveform

    return DCSweepResult(circuit=circuit, values=values_array, points=points)
