"""DC sweep analysis (thin frontend over the analysis engine).

The per-point Newton solves and the warm-start continuation live in
:class:`repro.spice.engine.AnalysisEngine`; this module keeps the stable
:func:`dc_sweep` entry point, the :class:`DCSweepResult` type (with
vectorized waveform extraction) and the crossing interpolation helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.spice.dcop import OperatingPoint
from repro.spice.elements.sources import CurrentSource, VoltageSource
from repro.spice.engine import get_engine
from repro.spice.netlist import Circuit


@dataclass
class DCSweepResult:
    """Result of a DC sweep.

    Attributes
    ----------
    circuit:
        The swept circuit.
    values:
        The swept source values.
    points:
        The converged :class:`OperatingPoint` of every sweep value.
    """

    circuit: Circuit
    values: np.ndarray
    points: List[OperatingPoint]
    _solutions: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def solutions(self) -> np.ndarray:
        """All sweep solutions stacked, one row per point (built lazily)."""
        if self._solutions is None:
            self._solutions = np.vstack([point.solution for point in self.points])
        return self._solutions

    def voltage(self, node_name: str) -> np.ndarray:
        """Voltage of a node across the sweep [V]."""
        index = self.circuit.node_index(node_name)
        if index < 0:
            return np.zeros(len(self.points))
        return self.solutions[:, index].copy()

    def source_current(self, source: Union[VoltageSource, str]) -> np.ndarray:
        """Current through a voltage source across the sweep [A].

        The source's branch position is resolved once (and cached on the
        source during compilation), so extraction is a single column slice
        instead of a per-point name lookup.
        """
        if isinstance(source, str):
            source = self.circuit.element(source)
        if not isinstance(source, VoltageSource):
            raise TypeError("source_current expects a VoltageSource or its name")
        return self.solutions[:, source.branch_position(self.circuit)].copy()

    @property
    def all_converged(self) -> bool:
        return all(point.converged for point in self.points)

    def find_value_for_voltage(self, node_name: str, target_v: float) -> float:
        """Swept value at which a node voltage crosses ``target_v`` (interpolated)."""
        voltages = self.voltage(node_name)
        return interpolate_crossing(self.values, voltages, target_v)

    def find_value_for_current(self, source_name: str, target_a: float) -> float:
        """Swept value at which a source current magnitude crosses ``target_a``."""
        currents = np.abs(self.source_current(source_name))
        return interpolate_crossing(self.values, currents, target_a)


def interpolate_crossing(xs: np.ndarray, ys: np.ndarray, target: float) -> float:
    """First x at which y crosses target, by linear interpolation (nan if never).

    A sign-change scan over ``ys - target`` replaces the Python loop; a first
    point already sitting exactly on the target is reported as a crossing at
    ``xs[0]`` (the loop-based version skipped it when the curve stayed flat).
    Public so other layers (e.g. the series-chain drive study) can reuse it
    on curves they compute themselves.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if ys.size == 0:
        return float("nan")
    signs = np.sign(ys - target)
    if signs[0] == 0.0:
        return float(xs[0])
    crossing = (signs[:-1] * signs[1:] <= 0.0) & (ys[:-1] != ys[1:])
    indices = np.flatnonzero(crossing)
    if indices.size == 0:
        return float("nan")
    i = int(indices[0])
    fraction = (target - ys[i]) / (ys[i + 1] - ys[i])
    return float(xs[i] + fraction * (xs[i + 1] - xs[i]))


#: Backwards-compatible alias (the helper predates its public export).
_interpolate_crossing = interpolate_crossing


def dc_sweep(
    circuit: Circuit,
    source: Union[VoltageSource, CurrentSource, str],
    values: Sequence[float],
    gmin: float = 1e-12,
    max_iterations: int = 200,
    solver=None,
) -> DCSweepResult:
    """Sweep an independent source and solve the operating point at each value.

    Delegates to the circuit's cached :class:`~repro.spice.engine.AnalysisEngine`:
    the compiled assembly structure is shared across all points and each
    point starts the Newton iteration from the previous point's solution
    (continuation), which is both faster and more robust than starting from
    zero for every value.  See :func:`repro.spice.engine.sweep_many` for
    running a whole family of sweeps through one compiled circuit.

    ``solver`` selects the linear-solver backend for every point (a name
    such as ``"sparse"`` or a :class:`~repro.spice.solvers.LinearSolver`
    instance; the engine default when omitted).

    .. deprecated::
        Build a :class:`repro.api.DCSweep` spec and run it through
        :meth:`repro.api.Session.run` instead (see the README migration
        table); this wrapper remains for compatibility and will keep
        delegating to the engine.
    """
    import warnings

    warnings.warn(
        "dc_sweep() is deprecated: build a repro.api.DCSweep spec and run it "
        "through repro.api.Session.run() (see the README migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_engine(circuit).dc_sweep(
        source, values, gmin=gmin, max_iterations=max_iterations, solver=solver
    )
