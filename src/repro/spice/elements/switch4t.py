"""The six-MOSFET four-terminal switch model of Fig. 9.

The square-shaped device has six conduction paths between its four terminals
(one per terminal pair).  The paper models it with six n-type level-1
MOSFETs sharing a single gate: four *Type A* transistors for the adjacent
terminal pairs (effective channel length 0.35 um) and two *Type B*
transistors for the opposite pairs (0.5 um), all with the electrode width of
0.7 um.  The model also places a small grounded capacitor on every terminal
(1 fF in the paper's circuit simulations).

:func:`add_four_terminal_switch` expands the subcircuit into an existing
:class:`~repro.spice.netlist.Circuit`; :class:`FourTerminalSwitchModel`
carries the parameter sets so lattice builders can derive them once from the
fitted TCAD data and reuse them for every switch.  The expansion produces
plain :class:`~repro.spice.elements.mosfet.MOSFET` and
:class:`~repro.spice.elements.capacitor.Capacitor` elements, so whole
lattices of switches compile into the vectorized analysis engine with no
per-switch Python cost during Newton iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fitting.level1 import Level1Parameters
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import MOSFET
from repro.spice.netlist import Circuit

#: Adjacent terminal pairs (Type A transistors), using paper terminal names.
TYPE_A_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("T1", "T3"),
    ("T1", "T4"),
    ("T2", "T3"),
    ("T2", "T4"),
)

#: Opposite terminal pairs (Type B transistors).
TYPE_B_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("T1", "T2"),
    ("T3", "T4"),
)

#: Channel length of the Type A (adjacent-pair) transistors [m].
TYPE_A_LENGTH_M = 0.35e-6

#: Channel length of the Type B (opposite-pair) transistors [m].
TYPE_B_LENGTH_M = 0.50e-6

#: Channel width shared by both types (electrode width) [m].
CHANNEL_WIDTH_M = 0.70e-6

#: Grounded capacitance placed on every terminal in the paper's simulations.
TERMINAL_CAPACITANCE_F = 1e-15


@dataclass(frozen=True)
class FourTerminalSwitchModel:
    """Parameter bundle of the six-MOSFET switch subcircuit.

    Attributes
    ----------
    type_a / type_b:
        Level-1 parameter sets of the adjacent-pair and opposite-pair
        transistors.
    terminal_capacitance_f:
        Grounded capacitance added at each terminal node (0 disables it).
    """

    type_a: Level1Parameters
    type_b: Level1Parameters
    terminal_capacitance_f: float = TERMINAL_CAPACITANCE_F

    @classmethod
    def from_process(
        cls,
        kp_a_per_v2: float,
        vth_v: float,
        lambda_per_v: float,
        terminal_capacitance_f: float = TERMINAL_CAPACITANCE_F,
    ) -> "FourTerminalSwitchModel":
        """Build the model from process-level ``Kp``/``Vth``/``lambda``.

        The two transistor types share the process parameters and differ only
        in channel length, exactly as in Section IV of the paper.
        """
        type_a = Level1Parameters(
            kp_a_per_v2=kp_a_per_v2,
            vth_v=vth_v,
            lambda_per_v=lambda_per_v,
            width_m=CHANNEL_WIDTH_M,
            length_m=TYPE_A_LENGTH_M,
        )
        type_b = Level1Parameters(
            kp_a_per_v2=kp_a_per_v2,
            vth_v=vth_v,
            lambda_per_v=lambda_per_v,
            width_m=CHANNEL_WIDTH_M,
            length_m=TYPE_B_LENGTH_M,
        )
        return cls(type_a=type_a, type_b=type_b, terminal_capacitance_f=terminal_capacitance_f)

    @classmethod
    def from_fit(cls, fit_parameters: Level1Parameters,
                 terminal_capacitance_f: float = TERMINAL_CAPACITANCE_F) -> "FourTerminalSwitchModel":
        """Build the model from a :class:`Level1Parameters` produced by the extraction."""
        return cls.from_process(
            kp_a_per_v2=fit_parameters.kp_a_per_v2,
            vth_v=fit_parameters.vth_v,
            lambda_per_v=fit_parameters.lambda_per_v,
            terminal_capacitance_f=terminal_capacitance_f,
        )


def add_four_terminal_switch(
    circuit: Circuit,
    name: str,
    terminal_nodes: Dict[str, str],
    gate_node: str,
    model: FourTerminalSwitchModel,
    add_terminal_capacitors: bool = True,
) -> Dict[str, MOSFET]:
    """Expand one four-terminal switch into ``circuit``.

    Parameters
    ----------
    circuit:
        Target circuit.
    name:
        Instance name; element names are prefixed with it.
    terminal_nodes:
        Mapping from the switch-local terminal names ``"T1".."T4"`` to
        circuit node names.
    gate_node:
        Circuit node driving the common gate (the switch's control input).
    model:
        Transistor parameters.
    add_terminal_capacitors:
        Whether to add the grounded 1 fF terminal capacitors.  When several
        switches share a node (as in a lattice), the caller typically adds
        one capacitor per *node* instead and disables this flag.

    Returns
    -------
    dict
        The six MOSFET elements keyed by ``"T1T3"``-style pair names.
    """
    missing = {"T1", "T2", "T3", "T4"} - set(terminal_nodes)
    if missing:
        raise ValueError(f"terminal_nodes is missing {sorted(missing)}")

    transistors: Dict[str, MOSFET] = {}
    for pair_list, parameters, type_name in (
        (TYPE_A_PAIRS, model.type_a, "a"),
        (TYPE_B_PAIRS, model.type_b, "b"),
    ):
        for terminal_a, terminal_b in pair_list:
            element_name = f"{name}_m{type_name}_{terminal_a.lower()}{terminal_b.lower()}"
            transistors[f"{terminal_a}{terminal_b}"] = MOSFET(
                circuit,
                element_name,
                drain=terminal_nodes[terminal_a],
                gate=gate_node,
                source=terminal_nodes[terminal_b],
                parameters=parameters,
            )

    if add_terminal_capacitors and model.terminal_capacitance_f > 0.0:
        for terminal, node in sorted(terminal_nodes.items()):
            Capacitor(
                circuit,
                f"{name}_c_{terminal.lower()}",
                node,
                "0",
                model.terminal_capacitance_f,
            )
    return transistors
