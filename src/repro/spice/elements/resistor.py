"""Linear resistor element.

Resistor conductances never change between Newton iterations, so the
analysis engine folds them into its cached base matrix at compile time;
``stamp()`` remains as the reference/compatibility path (and is what any
subclass overriding the element's behavior falls back to).
"""

from __future__ import annotations

from repro.spice.netlist import AnalysisState, Circuit, MNASystem


class Resistor:
    """A two-terminal linear resistor.

    Parameters
    ----------
    circuit:
        The circuit the resistor belongs to (nodes are created on demand).
    name:
        Unique element name (conventionally ``"R..."``).
    node_a, node_b:
        Terminal node names.
    resistance_ohm:
        Resistance; must be positive.
    """

    def __init__(self, circuit: Circuit, name: str, node_a: str, node_b: str, resistance_ohm: float):
        if resistance_ohm <= 0.0:
            raise ValueError(f"resistance must be positive, got {resistance_ohm}")
        self.name = name
        self.resistance_ohm = resistance_ohm
        self._node_a = circuit.node(node_a)
        self._node_b = circuit.node(node_b)
        self._node_a_name = node_a
        self._node_b_name = node_b
        circuit.add(self)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance_ohm

    @property
    def nodes(self) -> tuple:
        return (self._node_a_name, self._node_b_name)

    def stamp(self, system: MNASystem, state: AnalysisState) -> None:
        system.add_conductance(self._node_a, self._node_b, self.conductance)

    def current(self, state: AnalysisState) -> float:
        """Current flowing from ``node_a`` to ``node_b`` at the given state [A]."""
        return (state.voltage(self._node_a) - state.voltage(self._node_b)) * self.conductance

    def __repr__(self) -> str:
        return f"Resistor({self.name}, {self._node_a_name}-{self._node_b_name}, {self.resistance_ohm:g} ohm)"
