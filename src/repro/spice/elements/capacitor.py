"""Linear capacitor element with backward-Euler / trapezoidal companions.

During compiled transient analysis the engine stamps the companion
conductances into its cached base matrix (the timestep is fixed) and keeps
the trapezoidal history currents in one vector for all capacitors;
``stamp()``/``update_history()`` remain as the reference/compatibility path.
"""

from __future__ import annotations

from repro.spice.netlist import AnalysisState, Circuit, MNASystem


class Capacitor:
    """A two-terminal linear capacitor.

    During DC analyses the capacitor is an open circuit (it stamps nothing;
    the analysis-level ``gmin`` keeps floating nodes defined).  During
    transient analysis it stamps the companion model of the selected
    integration method:

    * backward Euler:  ``g = C/dt``,  ``Ieq = g * v_prev``
    * trapezoidal:     ``g = 2C/dt``, ``Ieq = g * v_prev + i_prev``

    Parameters
    ----------
    circuit, name, node_a, node_b:
        As for the other elements.
    capacitance_f:
        Capacitance in farads; must be positive.
    initial_voltage_v:
        Optional initial condition used for the first transient step.
    """

    def __init__(
        self,
        circuit: Circuit,
        name: str,
        node_a: str,
        node_b: str,
        capacitance_f: float,
        initial_voltage_v: float = 0.0,
    ):
        if capacitance_f <= 0.0:
            raise ValueError(f"capacitance must be positive, got {capacitance_f}")
        self.name = name
        self.capacitance_f = capacitance_f
        self.initial_voltage_v = initial_voltage_v
        self._node_a = circuit.node(node_a)
        self._node_b = circuit.node(node_b)
        self._node_a_name = node_a
        self._node_b_name = node_b
        self._previous_current = 0.0
        circuit.add(self)

    @property
    def nodes(self) -> tuple:
        return (self._node_a_name, self._node_b_name)

    def reset(self) -> None:
        """Clear the trapezoidal history current (called before a transient)."""
        self._previous_current = 0.0

    def _previous_voltage(self, state: AnalysisState) -> float:
        if state.previous_solution is None:
            return self.initial_voltage_v
        return state.previous_voltage(self._node_a) - state.previous_voltage(self._node_b)

    def stamp(self, system: MNASystem, state: AnalysisState) -> None:
        if state.timestep_s is None:
            return  # open circuit in DC
        dt = state.timestep_s
        v_prev = self._previous_voltage(state)
        if state.integration == "trap":
            g = 2.0 * self.capacitance_f / dt
            i_eq = g * v_prev + self._previous_current
        else:
            g = self.capacitance_f / dt
            i_eq = g * v_prev
        system.add_conductance(self._node_a, self._node_b, g)
        if self._node_a >= 0:
            system.add_current(self._node_a, i_eq)
        if self._node_b >= 0:
            system.add_current(self._node_b, -i_eq)

    def update_history(self, state: AnalysisState) -> None:
        """Record the branch current after a converged transient step.

        Only needed for trapezoidal integration; harmless otherwise.
        """
        if state.timestep_s is None:
            return
        dt = state.timestep_s
        v_now = state.voltage(self._node_a) - state.voltage(self._node_b)
        v_prev = self._previous_voltage(state)
        if state.integration == "trap":
            g = 2.0 * self.capacitance_f / dt
            self._previous_current = g * (v_now - v_prev) - self._previous_current
        else:
            self._previous_current = self.capacitance_f / dt * (v_now - v_prev)

    def __repr__(self) -> str:
        return f"Capacitor({self.name}, {self._node_a_name}-{self._node_b_name}, {self.capacitance_f:g} F)"
