"""Level-1 NMOS element with symmetric (bidirectional) conduction.

The four-terminal switch model of Fig. 9 consists of n-type MOSFETs whose
drain/source roles are not fixed: inside a lattice, current may flow through
a switch in either direction depending on which inputs are ON.  The element
therefore evaluates the level-1 equations after orienting the channel so the
higher-potential diffusion terminal acts as the drain, and linearizes around
the present Newton iterate with conductances ``gds``, ``gm`` and an
equivalent current source (the standard MOSFET companion model).

The bulk terminal is taken as grounded (as in the paper's circuit model) and
the body effect is absorbed in the threshold voltage of the extracted
parameters.

The scalar :meth:`MOSFET._evaluate` / :meth:`MOSFET.stamp` pair is the
reference (and compatibility) path; the analysis engine evaluates whole
device populations at once through :func:`evaluate_level1_arrays`, which
mirrors the scalar math element-wise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fitting.level1 import Level1Parameters
from repro.spice.netlist import AnalysisState, Circuit, MNASystem


def evaluate_level1_arrays(vgs, vds, beta, vth_v, lambda_per_v, smoothing_v):
    """Vectorized smoothed level-1 evaluation for oriented channels.

    All arguments are arrays of equal length (one entry per device) with the
    channels already oriented so ``vds >= 0``.  Returns ``(ids, gm, gds)``
    arrays, matching :meth:`MOSFET._evaluate` element-wise — including the
    smooth sub-threshold transition and its large-|x| guard branches.
    """
    x = (vgs - vth_v) / smoothing_v
    # exp() is only ever taken of a clamped-from-above argument: beyond the
    # x > 40 guard the exact linear branch is used, so clamping cannot leak
    # into the result; below -40 exp underflows harmlessly to 0.  The scalar
    # path's explicit x < -40 branch needs no counterpart here: for ex below
    # ~4e-18, log1p(ex) and ex/(1+ex) round to exactly ex in doubles, so the
    # smooth branch already reproduces it bit-for-bit.
    ex = np.exp(np.minimum(x, 45.0))
    linear = x > 40.0
    veff = np.where(linear, vgs - vth_v, smoothing_v * np.log1p(ex))
    dveff = np.where(linear, 1.0, ex / (1.0 + ex))

    clm = 1.0 + lambda_per_v * vds
    triode = vds <= veff
    body_triode = veff * vds - 0.5 * vds * vds
    body_sat = 0.5 * veff * veff
    body = np.where(triode, body_triode, body_sat)
    ids = beta * body * clm
    gm = beta * np.where(triode, vds, veff) * clm * dveff
    gds = np.where(
        triode,
        beta * (veff - vds) * clm + beta * body_triode * lambda_per_v,
        beta * body_sat * lambda_per_v,
    )
    return ids, gm, gds


class MOSFET:
    """A level-1 NMOS transistor.

    Parameters
    ----------
    circuit, name:
        As for the other elements.
    drain, gate, source:
        Node names of the three active terminals (bulk is ground).
    parameters:
        The :class:`~repro.fitting.level1.Level1Parameters` to use; typically
        the Type A or Type B parameter set extracted from the TCAD data.
    """

    #: Conductance added in parallel with the channel for Newton robustness.
    #: 10 nS (100 Mohm) keeps floating diffusion nodes (dangling lattice-edge
    #: terminals) firmly anchored so the Newton iteration converges, while
    #: staying negligible against the kilo-ohm on-state channels and the
    #: paper's 500 kOhm pull-up (worst-case error well below a millivolt).
    CHANNEL_GMIN = 1e-8

    def __init__(
        self,
        circuit: Circuit,
        name: str,
        drain: str,
        gate: str,
        source: str,
        parameters: Level1Parameters,
    ):
        self.name = name
        self.parameters = parameters
        self._drain = circuit.node(drain)
        self._gate = circuit.node(gate)
        self._source = circuit.node(source)
        self._drain_name = drain
        self._gate_name = gate
        self._source_name = source
        circuit.add(self)

    @property
    def nodes(self) -> tuple:
        return (self._drain_name, self._gate_name, self._source_name)

    # ------------------------------------------------------------------ #
    # device evaluation
    # ------------------------------------------------------------------ #

    #: Smoothing voltage of the cutoff transition (2 * n * kT/q at 300 K).
    #: The hard level-1 cutoff is replaced by a smooth effective overdrive
    #: ``veff = W * ln(1 + exp((Vgs - Vth)/W))`` which (a) models the
    #: sub-threshold tail the real device has and (b) keeps the Newton
    #: iteration's Jacobian continuous so lattice circuits with many devices
    #: sitting right at cutoff converge quadratically.
    SMOOTHING_V = 0.062

    def _effective_overdrive(self, vgs: float):
        """Smoothed overdrive and its derivative with respect to ``vgs``."""
        w = self.SMOOTHING_V
        x = (vgs - self.parameters.vth_v) / w
        if x > 40.0:
            return vgs - self.parameters.vth_v, 1.0
        if x < -40.0:
            return w * math.exp(x), math.exp(x)
        exp_x = math.exp(x)
        veff = w * math.log1p(exp_x)
        return veff, exp_x / (1.0 + exp_x)

    def _evaluate(self, vgs: float, vds: float):
        """Current and small-signal parameters for an oriented channel.

        Returns ``(ids, gm, gds)`` for ``vds >= 0``.
        """
        p = self.parameters
        lam = p.lambda_per_v
        beta = p.beta
        veff, dveff = self._effective_overdrive(vgs)
        clm = 1.0 + lam * vds
        if vds <= veff:
            body = veff * vds - 0.5 * vds * vds
            ids = beta * body * clm
            gm = beta * vds * clm * dveff
            gds = beta * (veff - vds) * clm + beta * body * lam
        else:
            body = 0.5 * veff * veff
            ids = beta * body * clm
            gm = beta * veff * clm * dveff
            gds = beta * body * lam
        return ids, gm, gds

    def channel_current(self, state: AnalysisState) -> float:
        """Drain-to-source channel current at the given state [A].

        Positive when conventional current flows from the ``drain`` node to
        the ``source`` node.
        """
        vd = state.voltage(self._drain)
        vg = state.voltage(self._gate)
        vs = state.voltage(self._source)
        if vd >= vs:
            ids, _, _ = self._evaluate(vg - vs, vd - vs)
            return ids
        ids, _, _ = self._evaluate(vg - vd, vs - vd)
        return -ids

    def stamp(self, system: MNASystem, state: AnalysisState) -> None:
        vd = state.voltage(self._drain)
        vg = state.voltage(self._gate)
        vs = state.voltage(self._source)

        if vd >= vs:
            drain, source = self._drain, self._source
            vgs, vds = vg - vs, vd - vs
            sign = 1.0
        else:
            drain, source = self._source, self._drain
            vgs, vds = vg - vd, vs - vd
            sign = -1.0

        ids, gm, gds = self._evaluate(vgs, vds)
        gds = gds + self.CHANNEL_GMIN

        # Companion model: I_eq flows drain -> source outside the linearization.
        i_eq = ids - gm * vgs - gds * vds

        system.add_conductance(drain, source, gds)
        system.add_transconductance(drain, source, self._gate, source, gm)
        if drain >= 0:
            system.add_current(drain, -i_eq)
        if source >= 0:
            system.add_current(source, i_eq)
        # The orientation (sign) only matters for reporting: the stamps above
        # are written in terms of the oriented drain/source nodes, so the
        # physical current direction is already correct.
        del sign

    def __repr__(self) -> str:
        return (
            f"MOSFET({self.name}, d={self._drain_name}, g={self._gate_name}, "
            f"s={self._source_name}, Vth={self.parameters.vth_v:g} V)"
        )
