"""Circuit elements of the SPICE-style simulator."""

from repro.spice.elements.resistor import Resistor
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource, CurrentSource
from repro.spice.elements.mosfet import MOSFET
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch

__all__ = [
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "MOSFET",
    "FourTerminalSwitchModel",
    "add_four_terminal_switch",
]
