"""Independent voltage and current sources.

The analysis engine folds the structural +/-1 branch entries of voltage
sources into its cached base matrix and re-reads each source's waveform on
every assembly, so ``set_level()`` during sweeps is honoured without
recompiling; ``stamp()`` remains as the reference/compatibility path.
"""

from __future__ import annotations

from typing import Union

from repro.spice.netlist import AnalysisState, Circuit, MNASystem
from repro.spice.waveforms import DC, Waveform


def _as_waveform(value: Union[float, int, Waveform]) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class VoltageSource:
    """An ideal independent voltage source.

    Occupies one MNA branch; the branch current (flowing from the positive
    node through the source to the negative node) is available from analysis
    results via :meth:`branch_position`.

    Parameters
    ----------
    circuit, name:
        As usual.
    node_plus, node_minus:
        Positive and negative terminals.
    value:
        A constant level (volts) or a :class:`~repro.spice.waveforms.Waveform`.
    """

    def __init__(
        self,
        circuit: Circuit,
        name: str,
        node_plus: str,
        node_minus: str,
        value: Union[float, Waveform],
    ):
        self.name = name
        self.waveform = _as_waveform(value)
        self._node_plus = circuit.node(node_plus)
        self._node_minus = circuit.node(node_minus)
        self._node_plus_name = node_plus
        self._node_minus_name = node_minus
        self._branch = circuit.allocate_branch()
        self._branch_position_cache = None
        circuit.add(self)

    @property
    def nodes(self) -> tuple:
        return (self._node_plus_name, self._node_minus_name)

    @property
    def branch(self) -> int:
        """The branch index allocated to this source."""
        return self._branch

    def value_at(self, time_s: float) -> float:
        return self.waveform.value(time_s)

    def set_level(self, level: float) -> None:
        """Replace the waveform with a DC level (used by DC sweeps)."""
        self.waveform = DC(float(level))

    def stamp(self, system: MNASystem, state: AnalysisState) -> None:
        system.add_voltage_branch(
            self._branch, self._node_plus, self._node_minus, self.value_at(state.time_s)
        )

    def branch_position(self, circuit: Circuit) -> int:
        """Index of this source's current in the solution vector.

        The position is cached against the circuit's revision so sweep and
        transient results can extract current waveforms with a plain column
        slice; adding nodes or elements invalidates the cache.
        """
        cached = self._branch_position_cache
        if cached is not None and cached[0] is circuit and cached[1] == circuit.revision:
            return cached[2]
        position = circuit.num_nodes + self._branch
        self._branch_position_cache = (circuit, circuit.revision, position)
        return position

    def __repr__(self) -> str:
        return f"VoltageSource({self.name}, {self._node_plus_name}-{self._node_minus_name})"


class CurrentSource:
    """An ideal independent current source.

    Positive current flows from ``node_plus`` through the source into
    ``node_minus`` externally — i.e. the source pushes current *into*
    ``node_minus``'s node and pulls it from ``node_plus``'s node, matching the
    SPICE convention for ``I`` elements.
    """

    def __init__(
        self,
        circuit: Circuit,
        name: str,
        node_plus: str,
        node_minus: str,
        value: Union[float, Waveform],
    ):
        self.name = name
        self.waveform = _as_waveform(value)
        self._node_plus = circuit.node(node_plus)
        self._node_minus = circuit.node(node_minus)
        self._node_plus_name = node_plus
        self._node_minus_name = node_minus
        circuit.add(self)

    @property
    def nodes(self) -> tuple:
        return (self._node_plus_name, self._node_minus_name)

    def value_at(self, time_s: float) -> float:
        return self.waveform.value(time_s)

    def set_level(self, level: float) -> None:
        """Replace the waveform with a DC level (used by DC sweeps)."""
        self.waveform = DC(float(level))

    def stamp(self, system: MNASystem, state: AnalysisState) -> None:
        current = self.value_at(state.time_s)
        if self._node_plus >= 0:
            system.add_current(self._node_plus, -current)
        if self._node_minus >= 0:
            system.add_current(self._node_minus, current)

    def __repr__(self) -> str:
        return f"CurrentSource({self.name}, {self._node_plus_name}-{self._node_minus_name})"
