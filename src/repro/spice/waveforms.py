"""Source waveforms: DC, pulse and piecewise-linear stimuli.

These mirror the SPICE ``DC``, ``PULSE`` and ``PWL`` source specifications
that the paper's transient test bench (Fig. 11) needs to drive the lattice
inputs through all combinations of the XOR3 inputs.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class Waveform:
    """Base class of source waveforms: ``value(t)`` returns volts (or amps)."""

    def value(self, time_s: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def breakpoints(self, until_s: float) -> Tuple[float, ...]:
        """Corner times of the waveform within ``[0, until_s]``.

        The adaptive transient controller clips its steps so it never
        integrates across a corner, whatever step size it has grown to.
        Smooth/constant waveforms (the default) have none.
        """
        return ()

    def __call__(self, time_s: float) -> float:
        return self.value(time_s)


@dataclass(frozen=True)
class DC(Waveform):
    """A constant source value."""

    level: float

    def value(self, time_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class Pulse(Waveform):
    """A SPICE-style periodic pulse.

    Attributes
    ----------
    initial / pulsed:
        The two levels.
    delay_s:
        Time before the first transition.
    rise_s / fall_s:
        Edge durations (must be positive to keep the waveform continuous).
    width_s:
        Time spent at the pulsed level.
    period_s:
        Repetition period; 0 or ``None`` makes the pulse one-shot.
    """

    initial: float
    pulsed: float
    delay_s: float = 0.0
    rise_s: float = 1e-12
    fall_s: float = 1e-12
    width_s: float = 1e-9
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rise_s <= 0.0 or self.fall_s <= 0.0:
            raise ValueError("rise and fall times must be positive")
        if self.width_s < 0.0:
            raise ValueError("pulse width cannot be negative")

    def value(self, time_s: float) -> float:
        t = time_s - self.delay_s
        if t < 0.0:
            return self.initial
        if self.period_s and self.period_s > 0.0:
            t = t % self.period_s
        if t < self.rise_s:
            return self.initial + (self.pulsed - self.initial) * t / self.rise_s
        t -= self.rise_s
        if t < self.width_s:
            return self.pulsed
        t -= self.width_s
        if t < self.fall_s:
            return self.pulsed + (self.initial - self.pulsed) * t / self.fall_s
        return self.initial

    def breakpoints(self, until_s: float) -> Tuple[float, ...]:
        """The pulse corners (edge starts/ends), repeated for periodic pulses.

        The corner count of a periodic pulse grows as ``until_s / period_s``;
        a consumer landing on every corner (the adaptive transient
        controller) does at least that much work anyway, so all corners in
        the window are generated.  A pathological span/period ratio fails
        loudly rather than silently dropping corners — stepping over
        stimulus edges would corrupt the waveform without any warning.
        """
        corners = (
            0.0,
            self.rise_s,
            self.rise_s + self.width_s,
            self.rise_s + self.width_s + self.fall_s,
        )
        period = self.period_s if self.period_s and self.period_s > 0.0 else None
        if period is not None and (until_s - self.delay_s) / period > 1_000_000:
            raise ValueError(
                f"a pulse with period {period:g} s has over 4 million corners "
                f"within {until_s:g} s; an analysis resolving them is "
                "infeasible — shorten the span, lengthen the period, or use "
                "fixed-step integration"
            )
        times: List[float] = []
        cycle = 0
        while True:
            offset = self.delay_s + (cycle * period if period else 0.0)
            if offset > until_s:
                break
            times.extend(offset + corner for corner in corners)
            cycle += 1
            if period is None:
                break
        return tuple(t for t in times if 0.0 <= t <= until_s)


@dataclass(frozen=True)
class PiecewiseLinear(Waveform):
    """A PWL waveform defined by (time, value) breakpoints.

    Before the first breakpoint the first value holds; after the last
    breakpoint the last value holds; in between the waveform interpolates
    linearly.  Breakpoint times must be strictly increasing.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("a PWL waveform needs at least one breakpoint")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL breakpoint times must be strictly increasing")

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]) -> "PiecewiseLinear":
        return cls(tuple((float(t), float(v)) for t, v in pairs))

    @classmethod
    def steps(
        cls,
        levels: Sequence[float],
        step_duration_s: float,
        transition_s: float = 1e-10,
        start_time_s: float = 0.0,
    ) -> "PiecewiseLinear":
        """A staircase waveform holding each level for ``step_duration_s``.

        Used to drive lattice inputs through a sequence of logic values; the
        short ``transition_s`` ramp keeps the waveform continuous for the
        transient integrator.
        """
        if step_duration_s <= 0.0:
            raise ValueError("step duration must be positive")
        if transition_s <= 0.0 or transition_s >= step_duration_s:
            raise ValueError("transition time must be positive and shorter than the step")
        if not levels:
            raise ValueError("at least one level is required")
        points: List[Tuple[float, float]] = []
        time = start_time_s
        points.append((time, levels[0]))
        for index, level in enumerate(levels):
            hold_end = start_time_s + (index + 1) * step_duration_s
            points.append((hold_end - transition_s, level))
            if index + 1 < len(levels):
                points.append((hold_end, levels[index + 1]))
        deduped = [points[0]]
        for t, v in points[1:]:
            if t > deduped[-1][0]:
                deduped.append((t, v))
        return cls(tuple(deduped))

    @property
    def _times(self) -> Tuple[float, ...]:
        # Cached breakpoint times for O(log n) lookups; the dataclass is
        # frozen, so the cache is written through object.__setattr__.
        times = self.__dict__.get("_times_cache")
        if times is None:
            times = tuple(t for t, _ in self.points)
            object.__setattr__(self, "_times_cache", times)
        return times

    def breakpoints(self, until_s: float) -> Tuple[float, ...]:
        """The PWL breakpoint times themselves."""
        return tuple(t for t in self._times if 0.0 <= t <= until_s)

    def value(self, time_s: float) -> float:
        points = self.points
        if time_s <= points[0][0]:
            return points[0][1]
        if time_s >= points[-1][0]:
            return points[-1][1]
        # Binary search for the enclosing segment (breakpoint times are
        # strictly increasing); transient analyses call this once per source
        # per Newton solve, so the lookup is on a warm path.
        i = bisect_right(self._times, time_s)
        t0, v0 = points[i - 1]
        t1, v1 = points[i]
        return v0 + (v1 - v0) * (time_s - t0) / (t1 - t0)
