"""Lattice-to-netlist translation: the circuit of the paper's Fig. 11 bench.

The circuit structure follows Section V exactly:

* the switching lattice is the pull-down network between the output node
  (the lattice's top plate) and ground (the bottom plate);
* a pull-up resistor (500 kOhm by default) connects the output node to the
  supply (1.2 V by default), so the circuit computes the *inverse* of the
  lattice function;
* a 10 fF load capacitor sits on the output node and a 1 fF grounded
  capacitor on every internal lattice node;
* each switch becomes the six-MOSFET model of Fig. 9 with its gate driven by
  the voltage source of its literal (or tied to the supply / ground for
  constant-1 / constant-0 cells).

Node naming: the four terminals of the switch at lattice cell (r, c) map to

* north  — ``out`` for row 0, otherwise ``v_{r-1}_{c}`` (junction above);
* south  — ground for the last row, otherwise ``v_{r}_{c}``;
* west   — ``h_{r}_{c-1}`` shared with the left neighbour, or the dangling
  node ``wl_{r}`` on the left edge;
* east   — ``h_{r}_{c}`` shared with the right neighbour, or ``wr_{r}``.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.lattice import Cell, Lattice
from repro.core.boolean import Literal
from repro.circuits.sizing import default_switch_model
from repro.circuits.testbench import InputSequence, input_waveforms
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.sources import VoltageSource
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch
from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveforms import DC, Waveform

#: Default values from Section V of the paper.
DEFAULT_SUPPLY_V = 1.2
DEFAULT_PULLUP_OHM = 500e3
DEFAULT_OUTPUT_CAPACITANCE_F = 10e-15
DEFAULT_NODE_CAPACITANCE_F = 1e-15

#: Node names used by the builder.
SUPPLY_NODE = "vdd"
OUTPUT_NODE = "out"


class BenchAnalysisMixin:
    """Engine-backed analysis methods shared by the lattice bench types.

    Expects the host class to provide ``circuit`` and ``input_sequence``
    attributes (both bench dataclasses do).
    """

    def solve_operating_point(self, **kwargs):
        """DC operating point through the circuit's cached analysis engine."""
        from repro.spice.engine import get_engine

        return get_engine(self.circuit).solve_dc(**kwargs)

    def run_transient(
        self,
        timestep_s: float = 1e-9,
        stop_time_s: Optional[float] = None,
        integration: str = "be",
        **kwargs,
    ):
        """Transient analysis through the circuit's cached analysis engine.

        ``stop_time_s`` defaults to the input sequence's total duration when
        the bench was built with one.
        """
        from repro.spice.engine import get_engine

        if stop_time_s is None:
            if self.input_sequence is None:
                raise ValueError(
                    "stop_time_s is required when the bench has no input sequence"
                )
            stop_time_s = self.input_sequence.total_duration_s
        return get_engine(self.circuit).solve_transient(
            stop_time_s, timestep_s, integration=integration, **kwargs
        )


@dataclass
class LatticeCircuit(BenchAnalysisMixin):
    """A lattice mapped to a circuit, with bookkeeping for analyses.

    Attributes
    ----------
    circuit:
        The SPICE circuit.
    lattice:
        The source lattice.
    supply_v / pullup_ohm:
        Values used during construction.
    gate_sources:
        Voltage sources driving each literal's gate node, keyed by literal
        string (``"a"``, ``"a'"``).
    input_sequence:
        The stimulus the gate sources follow (``None`` for static circuits).
    terminal_nodes:
        Mapping from each lattice cell to its four terminal node names.
    """

    circuit: Circuit
    lattice: Lattice
    supply_v: float
    pullup_ohm: float
    gate_sources: Dict[str, VoltageSource]
    input_sequence: Optional[InputSequence]
    terminal_nodes: Dict[Cell, Dict[str, str]]

    @property
    def output_node(self) -> str:
        """Name of the output node (the lattice top plate)."""
        return OUTPUT_NODE

    @property
    def supply_node(self) -> str:
        return SUPPLY_NODE

    def expected_output_level(self, assignment: Mapping[str, bool]) -> bool:
        """Logic level the output should settle to for an input assignment.

        The lattice is the pull-down network, so the output is the
        *complement* of the lattice function.
        """
        from repro.core.evaluation import evaluate_lattice

        return not evaluate_lattice(self.lattice, assignment)


def _terminal_nodes_for_cell(lattice: Lattice, cell: Cell) -> Dict[str, str]:
    """Circuit node names of the four terminals of the switch at ``cell``."""
    r, c = cell
    north = OUTPUT_NODE if r == 0 else f"v_{r - 1}_{c}"
    south = GROUND if r == lattice.rows - 1 else f"v_{r}_{c}"
    west = f"wl_{r}" if c == 0 else f"h_{r}_{c - 1}"
    east = f"wr_{r}" if c == lattice.cols - 1 else f"h_{r}_{c}"
    return {"T1": north, "T2": south, "T3": west, "T4": east}


def build_lattice_circuit(
    lattice: Lattice,
    model: Optional[FourTerminalSwitchModel] = None,
    input_sequence: Optional[InputSequence] = None,
    static_assignment: Optional[Mapping[str, bool]] = None,
    supply_v: float = DEFAULT_SUPPLY_V,
    pullup_ohm: float = DEFAULT_PULLUP_OHM,
    output_capacitance_f: float = DEFAULT_OUTPUT_CAPACITANCE_F,
    node_capacitance_f: float = DEFAULT_NODE_CAPACITANCE_F,
    title: Optional[str] = None,
    shared_gate_drive: bool = False,
) -> LatticeCircuit:
    """Build the pull-up-resistor lattice circuit of Section V.

    Exactly one of ``input_sequence`` (transient stimulus) and
    ``static_assignment`` (fixed DC input levels) should be given; with
    neither, all inputs default to logic 0.

    Parameters
    ----------
    lattice:
        The switching lattice acting as the pull-down network.
    model:
        Switch transistor model; defaults to the cached extraction from the
        square/HfO2 device.
    input_sequence:
        Stimulus for transient analysis; gate sources get piecewise-linear
        waveforms.
    static_assignment:
        Constant input values for DC analyses.
    supply_v, pullup_ohm, output_capacitance_f, node_capacitance_f:
        Circuit constants (paper defaults).
    shared_gate_drive:
        Large-lattice construction path for static (DC) studies: literals
        that resolve to the same logic level share one gate node and one
        voltage source instead of getting one source each.  An N x N
        identity lattice carries N^2 distinct literals, so per-literal
        sources add N^2 nodes *and* N^2 MNA branch rows that only ever sit
        at one of two levels; sharing collapses them to at most two, which
        shrinks the system the linear solver sees.  Only valid with a
        static assignment (or no stimulus at all); ``gate_sources`` then
        maps every literal to its shared source.
    """
    if input_sequence is not None and static_assignment is not None:
        raise ValueError("give either an input sequence or a static assignment, not both")
    if shared_gate_drive and input_sequence is not None:
        raise ValueError(
            "shared_gate_drive collapses same-level gate nodes and is only "
            "valid for static (DC) drive, not with an input sequence"
        )
    if model is None:
        model = default_switch_model()

    circuit = Circuit(title or f"lattice_{lattice.rows}x{lattice.cols}")

    # Supply, pull-up and output load.
    VoltageSource(circuit, "vdd_supply", SUPPLY_NODE, GROUND, DC(supply_v))
    Resistor(circuit, "r_pullup", SUPPLY_NODE, OUTPUT_NODE, pullup_ohm)
    Capacitor(circuit, "c_out", OUTPUT_NODE, GROUND, output_capacitance_f)

    # Gate drive: one node + source per literal that appears in the lattice
    # (or one per distinct static level on the shared-drive path).
    literals_used = sorted(
        {str(switch) for _, switch in lattice.switches() if not switch.is_constant}
    )
    gate_sources: Dict[str, VoltageSource] = {}
    waveforms: Dict[str, Waveform] = {}
    if input_sequence is not None:
        waveforms = dict(input_waveforms(input_sequence))

    def static_level(literal_text: str) -> float:
        if static_assignment is None:
            return 0.0
        literal = Literal.parse(literal_text)
        if literal.variable not in static_assignment:
            raise ValueError(f"static assignment is missing input {literal.variable!r}")
        logic = bool(static_assignment[literal.variable]) ^ literal.negated
        return supply_v if logic else 0.0

    gate_nodes: Dict[str, str] = {}
    if shared_gate_drive:
        shared_by_level: Dict[float, VoltageSource] = {}
        shared_node_by_level: Dict[float, str] = {}
        for literal_text in literals_used:
            level = static_level(literal_text)
            source = shared_by_level.get(level)
            if source is None:
                tag = "hi" if level > 0.0 else "lo"
                node_name = f"g_shared_{tag}"
                source = VoltageSource(
                    circuit, f"vg_shared_{tag}", node_name, GROUND, DC(level)
                )
                shared_by_level[level] = source
                shared_node_by_level[level] = node_name
            gate_sources[literal_text] = source
            gate_nodes[literal_text] = shared_node_by_level[level]
    else:
        for literal_text in literals_used:
            gate_node = _gate_node_name(literal_text)
            if input_sequence is not None:
                if literal_text not in waveforms:
                    raise ValueError(
                        f"the input sequence does not drive literal {literal_text!r}"
                    )
                value: Waveform = waveforms[literal_text]
            else:
                value = DC(static_level(literal_text))
            gate_sources[literal_text] = VoltageSource(
                circuit, f"vg_{_sanitize(literal_text)}", gate_node, GROUND, value
            )
            gate_nodes[literal_text] = gate_node

    # Switches.
    terminal_nodes: Dict[Cell, Dict[str, str]] = {}
    for cell, switch in lattice.switches():
        if switch.is_constant and switch.control is False:
            continue  # an always-OFF site contributes nothing
        nodes = _terminal_nodes_for_cell(lattice, cell)
        terminal_nodes[cell] = nodes
        if switch.is_constant:
            gate_node = SUPPLY_NODE  # constant 1: gate hard-wired to the supply
        else:
            gate_node = gate_nodes[str(switch)]
        add_four_terminal_switch(
            circuit,
            f"x_{cell[0]}_{cell[1]}",
            nodes,
            gate_node,
            model,
            add_terminal_capacitors=False,
        )

    # One grounded capacitor per distinct lattice node (paper: 1 fF each).
    if node_capacitance_f > 0.0:
        internal_nodes = sorted(
            {
                node
                for nodes in terminal_nodes.values()
                for node in nodes.values()
                if node not in (GROUND, OUTPUT_NODE)
            }
        )
        for node in internal_nodes:
            Capacitor(circuit, f"c_node_{node}", node, GROUND, node_capacitance_f)

    return LatticeCircuit(
        circuit=circuit,
        lattice=lattice,
        supply_v=supply_v,
        pullup_ohm=pullup_ohm,
        gate_sources=gate_sources,
        input_sequence=input_sequence,
        terminal_nodes=terminal_nodes,
    )


def build_scalability_bench(
    rows: int,
    cols: Optional[int] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    on_variables: float = 0.5,
    shared_gate_drive: bool = True,
    node_capacitance_f: float = DEFAULT_NODE_CAPACITANCE_F,
    **kwargs,
) -> LatticeCircuit:
    """A size-parameterized lattice circuit for solver-scaling studies.

    Builds the Section-V circuit around an *identity* lattice (every cell a
    distinct variable), which scales the MNA system roughly with
    ``rows * cols`` switch models — the knob the dense/sparse solver
    crossover benchmark sweeps.  The first ``on_variables`` fraction of the
    variables (in lattice order) is driven high, the rest low, giving a
    mixed conducting/cut-off network representative of real lattice
    operating points.

    Uses the :func:`build_lattice_circuit` shared-gate-drive construction
    path by default, so the gate-source population does not balloon the
    unknown vector with one branch row per literal.
    """
    if cols is None:
        cols = rows
    lattice = Lattice.identity(rows, cols)
    variables = lattice.variables()
    on_count = int(round(on_variables * len(variables)))
    assignment = {
        variable: index < on_count for index, variable in enumerate(variables)
    }
    return build_lattice_circuit(
        lattice,
        model=model,
        static_assignment=assignment,
        shared_gate_drive=shared_gate_drive,
        node_capacitance_f=node_capacitance_f,
        title=f"scalability_{rows}x{cols}",
        **kwargs,
    )


def scalability_grid_for_unknowns(
    min_unknowns: int,
    model: Optional[FourTerminalSwitchModel] = None,
    **kwargs,
) -> int:
    """Smallest square grid whose scalability bench has >= ``min_unknowns``.

    The identity-lattice construction contributes two MNA unknowns per cell
    (a drain-chain node and a source-chain node) plus a handful of rail and
    branch rows, so the closed form ``2 * grid**2`` lands within a few
    unknowns of the true system size.  This helper seeds the search with
    that estimate and then verifies against the actual built circuit, so
    callers asking for "a 10k-unknown lattice" get exactly the smallest
    grid that delivers one whatever the construction overhead is.
    """
    if min_unknowns < 1:
        raise ValueError("min_unknowns must be positive")
    grid = max(1, math.isqrt(min_unknowns // 2))
    while (
        build_scalability_bench(grid, model=model, **kwargs).circuit.system_size
        < min_unknowns
    ):
        grid += 1
    return grid


def _gate_node_name(literal_text: str) -> str:
    return f"g_{_sanitize(literal_text)}"


def _sanitize(literal_text: str) -> str:
    return literal_text.replace("'", "_n")
