"""Process-corner analysis (FF/SS/FS/SF) through the engine's overlays.

Corner analysis is the deterministic sibling of Monte Carlo: instead of
sampling parameter distributions, every transistor is pushed to an extreme
of the process spread at once.  The corners are expressed as parameter
overlays on the compiled circuit (shift every ``mos_vth``, scale every
``mos_beta``), so running all five corners shares one compiled structure
and never touches the netlist.

The corner naming follows the usual convention adapted to this single-type
(all-NMOS) process: the first letter rates the current drive (``F`` = fast:
higher beta, lower Vth), the second the threshold in isolation.  With one
device type the interesting skew corners are drive-vs-threshold:

========  =======================  ======================
corner    beta                     Vth
========  =======================  ======================
``TT``    nominal                  nominal
``FF``    +spread (fast)           -shift (fast)
``SS``    -spread (slow)           +shift (slow)
``FS``    +spread (fast)           +shift (slow)
``SF``    -spread (slow)           -shift (fast)
========  =======================  ======================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.spice.engine import AnalysisEngine, get_engine
from repro.spice.netlist import Circuit

#: Default fractional beta spread of the fast/slow corners (±10 %).
DEFAULT_BETA_SPREAD = 0.10

#: Default threshold shift of the fast/slow corners [V] (±45 mV ~ 3 sigma of
#: a 15 mV local spread, a typical figure for aggressively scaled devices).
DEFAULT_VTH_SHIFT_V = 0.045


@dataclass(frozen=True)
class Corner:
    """One process corner: a global beta scale and threshold shift.

    Attributes
    ----------
    name:
        Conventional two-letter label (``"TT"``, ``"FF"``, ...).
    beta_scale:
        Multiplier applied to every MOSFET's beta.
    vth_shift_v:
        Shift added to every MOSFET's threshold voltage [V].
    """

    name: str
    beta_scale: float
    vth_shift_v: float


def standard_corners(
    beta_spread: float = DEFAULT_BETA_SPREAD,
    vth_shift_v: float = DEFAULT_VTH_SHIFT_V,
) -> Dict[str, Corner]:
    """The five standard corners for a given spread (ordered TT first)."""
    if beta_spread < 0.0 or vth_shift_v < 0.0:
        raise ValueError("corner spreads must be non-negative")
    return {
        "TT": Corner("TT", 1.0, 0.0),
        "FF": Corner("FF", 1.0 + beta_spread, -vth_shift_v),
        "SS": Corner("SS", 1.0 - beta_spread, +vth_shift_v),
        "FS": Corner("FS", 1.0 + beta_spread, +vth_shift_v),
        "SF": Corner("SF", 1.0 - beta_spread, -vth_shift_v),
    }


def corner_overlay(circuit: Circuit, corner: Corner) -> Dict[str, np.ndarray]:
    """The compiled parameter overlay realizing ``corner`` on ``circuit``."""
    compiled = get_engine(circuit).compiled
    compiled.refresh_values()
    nominal = compiled.nominal_parameters()
    return {
        "mos_beta": nominal["mos_beta"] * corner.beta_scale,
        "mos_vth": nominal["mos_vth"] + corner.vth_shift_v,
    }


@contextmanager
def applied_corner(circuit: Circuit, corner: Corner) -> Iterator[AnalysisEngine]:
    """Apply a corner for the duration of a ``with`` block.

    Yields the circuit's analysis engine with the corner overlay active;
    nominal parameters are restored on exit, even on error.
    """
    engine = get_engine(circuit)
    compiled = engine.compiled
    compiled.set_parameter_overlay(corner_overlay(circuit, corner))
    try:
        yield engine
    finally:
        # Bound once: if the block mutated the topology, solves inside it
        # already raised; exiting must still restore the object we touched.
        compiled.clear_parameter_overlay()


def run_corners(
    circuit: Circuit,
    analysis: Callable[[AnalysisEngine, Corner], Any],
    corners: Optional[Mapping[str, Corner] | Sequence[Corner]] = None,
    beta_spread: float = DEFAULT_BETA_SPREAD,
    vth_shift_v: float = DEFAULT_VTH_SHIFT_V,
) -> Dict[str, Any]:
    """Run an analysis at every corner, sharing one compiled circuit.

    Parameters
    ----------
    circuit:
        The circuit under study.
    analysis:
        ``(engine, corner) -> result``; called with the corner overlay
        already applied.
    corners:
        Corners to run (mapping or sequence); defaults to the five
        :func:`standard_corners` at the given spreads.

    Returns an ordered dict of results keyed by corner name.
    """
    if corners is None:
        corner_list = list(standard_corners(beta_spread, vth_shift_v).values())
    elif isinstance(corners, Mapping):
        corner_list = list(corners.values())
    else:
        corner_list = list(corners)
    results: Dict[str, Any] = {}
    for corner in corner_list:
        with applied_corner(circuit, corner) as engine:
            results[corner.name] = analysis(engine, corner)
    return results
