"""Derivation of the circuit-model parameters from the device simulation.

Section IV of the paper extracts level-1 parameters from the TCAD data of the
square-shaped HfO2 device and builds the six-MOSFET switch model from them.
This module automates that flow on top of the TCAD substitute:

1. simulate the Id-Vg (Vds = 5 V) and Id-Vd (Vgs = 5 V) sweeps of the DSSS
   case with :class:`repro.tcad.simulator.DeviceSimulator`;
2. fit ``Kp``, ``Vth`` and ``lambda`` with :mod:`repro.fitting.extraction`;
3. wrap the result in a :class:`repro.spice.elements.switch4t.FourTerminalSwitchModel`.

The default model is cached because every circuit benchmark needs it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.devices.specs import DeviceSpec, device_spec
from repro.devices.terminals import DSSS
from repro.fitting.extraction import FitResult, fit_level1_parameters
from repro.fitting.level1 import Level1Parameters
from repro.spice.elements.switch4t import (
    CHANNEL_WIDTH_M,
    FourTerminalSwitchModel,
    TYPE_A_LENGTH_M,
)
from repro.tcad.simulator import DeviceSimulator


def extract_square_device_parameters(
    spec: Optional[DeviceSpec] = None,
    points: int = 26,
) -> FitResult:
    """Run the Section IV extraction on the (square, HfO2) device.

    Both paper scenarios are used: an Id-Vg sweep at ``Vds = 5 V`` and an
    Id-Vd sweep at ``Vgs = 5 V``, all in the DSSS case.  The fit assumes the
    Type A channel geometry (W = 0.7 um, L = 0.35 um), matching how the
    extracted ``Kp`` is then reused for both transistor types.
    """
    if spec is None:
        spec = device_spec("square", "HfO2")
    simulator = DeviceSimulator(spec)

    vgs_sweep = np.linspace(0.0, 5.0, points)
    vgs_values, idvg = simulator.idvg_samples(DSSS, vds=5.0, vgs_values=vgs_sweep)
    vds_sweep = np.linspace(0.0, 5.0, points)
    vds_values, idvd = simulator.idvd_samples(DSSS, vgs=5.0, vds_values=vds_sweep)

    datasets = [
        (vgs_values, np.full_like(vgs_values, 5.0), idvg),
        (np.full_like(vds_values, 5.0), vds_values, idvd),
    ]
    return fit_level1_parameters(datasets, width_m=CHANNEL_WIDTH_M, length_m=TYPE_A_LENGTH_M)


def switch_model_from_spec(
    spec: Optional[DeviceSpec] = None,
    terminal_capacitance_f: float = 1e-15,
    points: int = 26,
) -> FourTerminalSwitchModel:
    """Extract parameters from a device spec and build the switch model."""
    fit = extract_square_device_parameters(spec, points=points)
    return FourTerminalSwitchModel.from_fit(
        fit.parameters, terminal_capacitance_f=terminal_capacitance_f
    )


@lru_cache(maxsize=1)
def default_switch_model() -> FourTerminalSwitchModel:
    """The cached default switch model (square device, HfO2 gate).

    This is the model every circuit experiment of Section V uses; building it
    involves a TCAD-substitute simulation and a least-squares fit, so the
    result is cached for the lifetime of the process.
    """
    return switch_model_from_spec()


def switch_model_from_parameters(
    kp_a_per_v2: float,
    vth_v: float,
    lambda_per_v: float,
    terminal_capacitance_f: float = 1e-15,
) -> FourTerminalSwitchModel:
    """Build a switch model directly from process parameters (no simulation).

    Handy for tests and for exploring what-if scenarios without the device
    simulation in the loop.
    """
    return FourTerminalSwitchModel.from_process(
        kp_a_per_v2=kp_a_per_v2,
        vth_v=vth_v,
        lambda_per_v=lambda_per_v,
        terminal_capacitance_f=terminal_capacitance_f,
    )
