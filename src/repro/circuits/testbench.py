"""Input stimulus generation for lattice circuits.

The transient experiment of Fig. 11 drives the XOR3 lattice through input
combinations and observes the output.  :class:`InputSequence` describes a
sequence of input vectors held for a fixed duration each;
:func:`input_waveforms` turns it into one piecewise-linear gate waveform per
literal (a positive literal follows the input value, a negated literal its
complement), which is exactly what the lattice netlist builder needs to
instantiate its gate voltage sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.spice.waveforms import PiecewiseLinear


def all_input_vectors(variables: Sequence[str]) -> List[Dict[str, bool]]:
    """All ``2**n`` input assignments in binary counting order.

    Variable ``k`` is bit ``k`` of the vector index, consistent with the
    minterm numbering of :class:`repro.core.boolean.BooleanFunction`.
    """
    variables = list(variables)
    vectors = []
    for index in range(1 << len(variables)):
        vectors.append({name: bool((index >> bit) & 1) for bit, name in enumerate(variables)})
    return vectors


def gray_code_vectors(variables: Sequence[str]) -> List[Dict[str, bool]]:
    """All input assignments in Gray-code order (one bit flips per step).

    Useful for transient runs: single-input transitions make rise/fall times
    attributable to one switching event.
    """
    variables = list(variables)
    vectors = []
    for index in range(1 << len(variables)):
        gray = index ^ (index >> 1)
        vectors.append({name: bool((gray >> bit) & 1) for bit, name in enumerate(variables)})
    return vectors


@dataclass(frozen=True)
class InputSequence:
    """A sequence of input vectors applied back to back.

    Attributes
    ----------
    variables:
        Input variable names.
    vectors:
        The input assignments, applied in order.
    step_duration_s:
        How long each vector is held.
    high_level_v / low_level_v:
        Gate voltages representing logic 1 and logic 0.
    transition_s:
        Edge duration between vectors.
    """

    variables: Tuple[str, ...]
    vectors: Tuple[Tuple[bool, ...], ...]
    step_duration_s: float = 100e-9
    high_level_v: float = 1.2
    low_level_v: float = 0.0
    transition_s: float = 1e-9

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("an input sequence needs at least one variable")
        if not self.vectors:
            raise ValueError("an input sequence needs at least one vector")
        for vector in self.vectors:
            if len(vector) != len(self.variables):
                raise ValueError("every vector must assign all variables")
        if self.step_duration_s <= 0.0:
            raise ValueError("step duration must be positive")
        if not 0.0 < self.transition_s < self.step_duration_s:
            raise ValueError("transition time must be positive and shorter than the step")

    @classmethod
    def from_assignments(
        cls,
        variables: Sequence[str],
        assignments: Sequence[Mapping[str, bool]],
        step_duration_s: float = 100e-9,
        high_level_v: float = 1.2,
        low_level_v: float = 0.0,
        transition_s: float = 1e-9,
    ) -> "InputSequence":
        """Build a sequence from dict assignments (missing keys are an error)."""
        variables = tuple(variables)
        vectors = []
        for assignment in assignments:
            missing = set(variables) - set(assignment)
            if missing:
                raise ValueError(f"assignment is missing variables {sorted(missing)}")
            vectors.append(tuple(bool(assignment[name]) for name in variables))
        return cls(
            variables=variables,
            vectors=tuple(vectors),
            step_duration_s=step_duration_s,
            high_level_v=high_level_v,
            low_level_v=low_level_v,
            transition_s=transition_s,
        )

    @classmethod
    def exhaustive(
        cls,
        variables: Sequence[str],
        step_duration_s: float = 100e-9,
        high_level_v: float = 1.2,
        gray: bool = False,
        transition_s: float = 1e-9,
    ) -> "InputSequence":
        """All input combinations, in counting or Gray-code order."""
        assignments = gray_code_vectors(variables) if gray else all_input_vectors(variables)
        return cls.from_assignments(
            variables,
            assignments,
            step_duration_s=step_duration_s,
            high_level_v=high_level_v,
            transition_s=transition_s,
        )

    @property
    def total_duration_s(self) -> float:
        """Total length of the stimulus."""
        return self.step_duration_s * len(self.vectors)

    def value_at_step(self, variable: str, step: int) -> bool:
        """Logic value of one variable during one step."""
        bit = self.variables.index(variable)
        return self.vectors[step][bit]

    def assignment_at_step(self, step: int) -> Dict[str, bool]:
        """The full input assignment of one step."""
        return {name: self.vectors[step][bit] for bit, name in enumerate(self.variables)}

    def sample_window(self, step: int, fraction: float = 0.9) -> float:
        """A time late inside a step, where the output has settled."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return (step + fraction) * self.step_duration_s

    def sample_times(self, fraction: float = 0.9) -> np.ndarray:
        """Settled sample times of every step at once (one per vector).

        Companion of :meth:`sample_window` for batched post-processing: feed
        the result to :meth:`repro.spice.transient.TransientResult.sample_voltages`
        to read the settled output of a whole transient run in one call.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return (np.arange(len(self.vectors)) + fraction) * self.step_duration_s


def input_waveforms(sequence: InputSequence) -> Dict[str, PiecewiseLinear]:
    """One gate waveform per literal appearing in a lattice.

    Returns waveforms keyed by literal string: ``"a"`` follows the value of
    ``a`` in the sequence, ``"a'"`` its complement.  Both are always
    generated; the netlist builder instantiates only the ones its lattice
    actually uses.
    """
    waveforms: Dict[str, PiecewiseLinear] = {}
    for variable in sequence.variables:
        true_levels = []
        complement_levels = []
        for step in range(len(sequence.vectors)):
            value = sequence.value_at_step(variable, step)
            true_levels.append(sequence.high_level_v if value else sequence.low_level_v)
            complement_levels.append(sequence.low_level_v if value else sequence.high_level_v)
        waveforms[variable] = PiecewiseLinear.steps(
            true_levels, sequence.step_duration_s, transition_s=sequence.transition_s
        )
        waveforms[f"{variable}'"] = PiecewiseLinear.steps(
            complement_levels, sequence.step_duration_s, transition_s=sequence.transition_s
        )
    return waveforms
