"""Lattice-level circuits: netlist builders and test benches (Section V).

This package turns :class:`~repro.core.lattice.Lattice` objects into circuits
for the SPICE-style simulator:

* :mod:`repro.circuits.lattice_netlist` — the pull-down lattice with its
  500 kOhm pull-up resistor, supply, terminal capacitors and output load,
  exactly as in the paper's XOR3 experiment (Fig. 11);
* :mod:`repro.circuits.series_chain` — chains of four-terminal switches in
  series for the drive-capability study (Fig. 12);
* :mod:`repro.circuits.testbench` — input stimulus generation (input vector
  sequences as piecewise-linear gate waveforms);
* :mod:`repro.circuits.sizing` — derivation of the switch model parameters
  from the TCAD-substitute data (the Section IV extraction), cached so the
  many circuit benches do not re-run the device simulation;
* :mod:`repro.circuits.corners` — FF/SS/FS/SF process-corner analysis as
  parameter overlays on the compiled engine (the deterministic sibling of
  the Monte-Carlo subsystem).
"""

from repro.circuits.sizing import (
    default_switch_model,
    extract_square_device_parameters,
    switch_model_from_spec,
)
from repro.circuits.lattice_netlist import (
    LatticeCircuit,
    build_lattice_circuit,
    build_scalability_bench,
    scalability_grid_for_unknowns,
)
from repro.circuits.complementary import (
    ComplementaryLatticeCircuit,
    build_complementary_lattice_circuit,
    complement_lattice,
)
from repro.circuits.series_chain import SeriesChainCircuit, build_series_chain
from repro.circuits.testbench import (
    InputSequence,
    all_input_vectors,
    gray_code_vectors,
    input_waveforms,
)
from repro.circuits.corners import (
    Corner,
    applied_corner,
    corner_overlay,
    run_corners,
    standard_corners,
)

__all__ = [
    "default_switch_model",
    "extract_square_device_parameters",
    "switch_model_from_spec",
    "LatticeCircuit",
    "build_lattice_circuit",
    "build_scalability_bench",
    "scalability_grid_for_unknowns",
    "ComplementaryLatticeCircuit",
    "build_complementary_lattice_circuit",
    "complement_lattice",
    "SeriesChainCircuit",
    "build_series_chain",
    "InputSequence",
    "all_input_vectors",
    "gray_code_vectors",
    "input_waveforms",
    "Corner",
    "applied_corner",
    "corner_overlay",
    "run_corners",
    "standard_corners",
]
