"""Series chains of four-terminal switches (the Fig. 12 drive study).

The paper asks how many switches in series a lattice circuit can drive and
answers with two experiments on chains of 1..21 switches whose gates are all
ON:

* Fig. 12a — the current through the chain at a constant 1.2 V across it;
* Fig. 12b — the voltage needed across the chain for a constant 5.5 uA.

A chain connects consecutive switches through their opposite terminals (T1 of
switch *i+1* to T2 of switch *i*); the side terminals T3/T4 are left dangling,
as they are inside a single lattice column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.sizing import default_switch_model
from repro.spice.dcop import OperatingPoint
from repro.spice.dcsweep import DCSweepResult, interpolate_crossing
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch
from repro.spice.engine import get_engine
from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveforms import DC

#: Element name of the source driving the chain (its current is the readout).
DRIVE_SOURCE_NAME = "v_drive"
#: Element name of the gate supply.
GATE_SOURCE_NAME = "v_gate"


@dataclass
class SeriesChainCircuit:
    """A chain of N four-terminal switches between the drive node and ground.

    Attributes
    ----------
    circuit:
        The SPICE circuit.
    num_switches:
        Chain length.
    drive_source / gate_source:
        The voltage sources for the chain bias and the common gate.
    """

    circuit: Circuit
    num_switches: int
    drive_source: VoltageSource
    gate_source: VoltageSource

    def chain_current(self, drive_v: float, gate_v: float = 1.2) -> float:
        """DC current through the chain for the given bias [A].

        Repeated calls reuse the compiled analysis structure cached on the
        circuit, so bias studies pay the compile cost only once.
        """
        self.drive_source.set_level(drive_v)
        self.gate_source.set_level(gate_v)
        point = get_engine(self.circuit).solve_dc()
        return abs(point.source_current(self.drive_source))

    def voltage_for_current(
        self,
        target_current_a: float,
        gate_v: Optional[float] = None,
        max_voltage_v: float = 6.0,
        points: int = 61,
        tie_gate_to_drive: bool = True,
    ) -> float:
        """Supply voltage at which the chain carries ``target_current_a`` [V].

        The Fig. 12b experiment raises the supply of the whole circuit, so by
        default the common gate follows the drive voltage (``tie_gate_to_drive``);
        pass ``gate_v`` with ``tie_gate_to_drive=False`` to keep the gate fixed
        instead.  Returns ``nan`` when the target current is not reached below
        ``max_voltage_v``.
        """
        engine = get_engine(self.circuit)
        if not tie_gate_to_drive:
            if gate_v is None:
                raise ValueError("gate_v is required when the gate does not follow the drive")
            self.gate_source.set_level(gate_v)
            sweep = engine.dc_sweep(
                self.drive_source, np.linspace(0.0, max_voltage_v, points)
            )
            return sweep.find_value_for_current(DRIVE_SOURCE_NAME, target_current_a)

        # The gate follows the drive, so this is not a plain single-source
        # sweep; run the warm-started continuation manually on the engine and
        # reuse the sweep layer's crossing interpolation.
        engine.compiled.refresh_values()
        voltages = np.linspace(0.0, max_voltage_v, points)
        currents = np.empty_like(voltages)
        guess = None
        for i, voltage in enumerate(voltages):
            self.drive_source.set_level(float(voltage))
            self.gate_source.set_level(float(voltage))
            point = engine.solve_dc(initial_guess=guess, refresh=False)
            guess = point.solution.copy()
            currents[i] = abs(point.source_current(self.drive_source))
        return interpolate_crossing(voltages, currents, target_current_a)

    def sweep_drive(self, values: Sequence[float], gate_v: float = 1.2) -> DCSweepResult:
        """DC sweep of the drive voltage at a fixed gate voltage."""
        self.gate_source.set_level(gate_v)
        return get_engine(self.circuit).dc_sweep(self.drive_source, values)

    def sweep_drive_family(
        self, values: Sequence[float], gate_levels: Sequence[float]
    ) -> Dict[float, DCSweepResult]:
        """Drive sweeps at several gate voltages through one compiled circuit.

        Runs :meth:`repro.spice.engine.AnalysisEngine.sweep_many` with one
        family per gate level: the compiled structure is shared across the
        whole batch and each family is seeded with the previous family's
        solution, so the full drive study costs one compile and mostly
        one-or-two-iteration warm-started solves.
        """
        families = {float(gate_v): values for gate_v in gate_levels}
        return get_engine(self.circuit).sweep_many(
            self.drive_source,
            families,
            configure=lambda gate_v: self.gate_source.set_level(gate_v),
        )


def build_series_chain(
    num_switches: int,
    model: Optional[FourTerminalSwitchModel] = None,
    drive_v: float = 1.2,
    gate_v: float = 1.2,
    node_capacitance_f: float = 0.0,
) -> SeriesChainCircuit:
    """Build a chain of ``num_switches`` switches between the drive and ground.

    Parameters
    ----------
    num_switches:
        Number of switches in series (at least 1).
    model:
        Switch transistor model (defaults to the cached square/HfO2 model).
    drive_v / gate_v:
        Initial source levels (both can be changed later through the result).
    node_capacitance_f:
        Optional grounded capacitance per internal node; DC studies leave it
        at 0 to keep the matrices small.
    """
    if num_switches < 1:
        raise ValueError("a chain needs at least one switch")
    if model is None:
        model = default_switch_model()

    circuit = Circuit(f"series_chain_{num_switches}")
    drive_source = VoltageSource(circuit, DRIVE_SOURCE_NAME, "n_0", GROUND, DC(drive_v))
    gate_source = VoltageSource(circuit, GATE_SOURCE_NAME, "gate", GROUND, DC(gate_v))

    for index in range(num_switches):
        top_node = f"n_{index}"
        bottom_node = GROUND if index == num_switches - 1 else f"n_{index + 1}"
        nodes = {
            "T1": top_node,
            "T2": bottom_node,
            "T3": f"side_a_{index}",
            "T4": f"side_b_{index}",
        }
        add_four_terminal_switch(
            circuit,
            f"sw_{index}",
            nodes,
            "gate",
            model,
            add_terminal_capacitors=False,
        )
        if node_capacitance_f > 0.0:
            for suffix, node in nodes.items():
                if node != GROUND:
                    Capacitor(
                        circuit,
                        f"c_{index}_{suffix.lower()}",
                        node,
                        GROUND,
                        node_capacitance_f,
                    )

    return SeriesChainCircuit(
        circuit=circuit,
        num_switches=num_switches,
        drive_source=drive_source,
        gate_source=gate_source,
    )


def current_versus_chain_length(
    lengths: Sequence[int],
    drive_v: float = 1.2,
    gate_v: float = 1.2,
    model: Optional[FourTerminalSwitchModel] = None,
) -> Dict[int, float]:
    """Fig. 12a: chain current at constant drive voltage for several lengths."""
    if model is None:
        model = default_switch_model()
    results: Dict[int, float] = {}
    for length in lengths:
        chain = build_series_chain(length, model=model, drive_v=drive_v, gate_v=gate_v)
        results[length] = chain.chain_current(drive_v, gate_v)
    return results


def voltage_versus_chain_length(
    lengths: Sequence[int],
    target_current_a: float,
    model: Optional[FourTerminalSwitchModel] = None,
    max_voltage_v: float = 6.0,
) -> Dict[int, float]:
    """Fig. 12b: supply voltage needed for a constant current, per chain length.

    The common gate follows the supply, matching the paper's test where the
    whole circuit's supply voltage is raised until the chain carries the
    target current.
    """
    if model is None:
        model = default_switch_model()
    results: Dict[int, float] = {}
    for length in lengths:
        chain = build_series_chain(length, model=model)
        results[length] = chain.voltage_for_current(
            target_current_a, max_voltage_v=max_voltage_v
        )
    return results
