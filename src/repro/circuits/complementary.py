"""Complementary lattice circuits (the Section VI-A extension).

The paper's conclusion proposes replacing the pull-up resistor of the
Section V circuit with a second switching lattice so that the circuit becomes
fully complementary: the pull-down lattice realizes the target function ``f``
(connecting the output to ground when ``f = 1``) and the pull-up lattice
realizes its complement ``f'`` (connecting the output to the supply when
``f = 0``).  The expected benefits — near-zero static current and a full-rail,
faster rising edge — are exactly what :func:`build_complementary_lattice_circuit`
lets one quantify against the resistive-pull-up circuit of Fig. 11.

Both networks are built from the same n-type four-terminal switch model, so
the pull-up lattice passes a degraded high level (one threshold drop below
the supply), which the comparison also exposes — a known limitation the paper
would face with a single device polarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.circuits.lattice_netlist import (
    DEFAULT_NODE_CAPACITANCE_F,
    DEFAULT_OUTPUT_CAPACITANCE_F,
    DEFAULT_SUPPLY_V,
    OUTPUT_NODE,
    SUPPLY_NODE,
    BenchAnalysisMixin,
)
from repro.circuits.sizing import default_switch_model
from repro.circuits.testbench import InputSequence, input_waveforms
from repro.core.boolean import Literal
from repro.core.evaluation import evaluate_lattice, lattice_function
from repro.core.lattice import Cell, Lattice
from repro.core.synthesis import synthesize_dual_product
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.sources import VoltageSource
from repro.spice.elements.switch4t import FourTerminalSwitchModel, add_four_terminal_switch
from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveforms import DC, Waveform


@dataclass
class ComplementaryLatticeCircuit(BenchAnalysisMixin):
    """A lattice pull-down network with a lattice pull-up network.

    Attributes
    ----------
    circuit:
        The SPICE circuit.
    pulldown / pullup:
        The two lattices (pull-down realizes ``f``, pull-up realizes ``f'``).
    supply_v:
        Supply voltage.
    gate_sources:
        Voltage sources driving each literal's gate node.
    input_sequence:
        The stimulus, if the circuit was built for a transient run.
    """

    circuit: Circuit
    pulldown: Lattice
    pullup: Lattice
    supply_v: float
    gate_sources: Dict[str, VoltageSource]
    input_sequence: Optional[InputSequence]

    @property
    def output_node(self) -> str:
        return OUTPUT_NODE

    @property
    def supply_node(self) -> str:
        return SUPPLY_NODE

    def expected_output_level(self, assignment: Mapping[str, bool]) -> bool:
        """The output is the complement of the pull-down lattice's function."""
        return not evaluate_lattice(self.pulldown, assignment)

    def supply_source_name(self) -> str:
        return "vdd_supply"


def complement_lattice(lattice: Lattice) -> Lattice:
    """A lattice realizing the complement of ``lattice``'s function.

    Uses the dual-product synthesis on the complemented Boolean function, so
    the result is correct by construction (and verified by the caller's
    tests); its size is governed by the ISOP covers of ``f'`` and its dual.
    """
    target = lattice_function(lattice)
    return synthesize_dual_product(~target).lattice


def _instantiate_lattice(
    circuit: Circuit,
    lattice: Lattice,
    prefix: str,
    top_node: str,
    bottom_node: str,
    model: FourTerminalSwitchModel,
    gate_node_of: Dict[str, str],
    node_capacitance_f: float,
) -> None:
    """Expand one lattice between two plate nodes.

    Cell terminals follow the same scheme as the Fig. 11 builder, with all
    internal node names namespaced by ``prefix`` so two lattices can coexist
    in one circuit.
    """
    def terminal_nodes(cell: Cell) -> Dict[str, str]:
        r, c = cell
        north = top_node if r == 0 else f"{prefix}_v_{r - 1}_{c}"
        south = bottom_node if r == lattice.rows - 1 else f"{prefix}_v_{r}_{c}"
        west = f"{prefix}_wl_{r}" if c == 0 else f"{prefix}_h_{r}_{c - 1}"
        east = f"{prefix}_wr_{r}" if c == lattice.cols - 1 else f"{prefix}_h_{r}_{c}"
        return {"T1": north, "T2": south, "T3": west, "T4": east}

    internal_nodes = set()
    for cell, switch in lattice.switches():
        if switch.is_constant and switch.control is False:
            continue
        nodes = terminal_nodes(cell)
        internal_nodes.update(
            node for node in nodes.values() if node not in (GROUND, top_node, bottom_node)
        )
        gate_node = SUPPLY_NODE if switch.is_constant else gate_node_of[str(switch)]
        add_four_terminal_switch(
            circuit,
            f"{prefix}_x_{cell[0]}_{cell[1]}",
            nodes,
            gate_node,
            model,
            add_terminal_capacitors=False,
        )

    if node_capacitance_f > 0.0:
        for node in sorted(internal_nodes):
            Capacitor(circuit, f"{prefix}_c_{node}", node, GROUND, node_capacitance_f)


def build_complementary_lattice_circuit(
    pulldown: Lattice,
    pullup: Optional[Lattice] = None,
    model: Optional[FourTerminalSwitchModel] = None,
    input_sequence: Optional[InputSequence] = None,
    static_assignment: Optional[Mapping[str, bool]] = None,
    supply_v: float = DEFAULT_SUPPLY_V,
    output_capacitance_f: float = DEFAULT_OUTPUT_CAPACITANCE_F,
    node_capacitance_f: float = DEFAULT_NODE_CAPACITANCE_F,
    title: Optional[str] = None,
) -> ComplementaryLatticeCircuit:
    """Build the complementary (lattice pull-up) variant of the Fig. 11 circuit.

    Parameters
    ----------
    pulldown:
        Lattice realizing the target function ``f`` (output pulled low when
        ``f = 1``).
    pullup:
        Lattice realizing ``f'``; synthesized automatically with
        :func:`complement_lattice` when omitted.
    model, input_sequence, static_assignment, supply_v, ...:
        As for :func:`repro.circuits.lattice_netlist.build_lattice_circuit`.
    """
    if input_sequence is not None and static_assignment is not None:
        raise ValueError("give either an input sequence or a static assignment, not both")
    if model is None:
        model = default_switch_model()
    if pullup is None:
        pullup = complement_lattice(pulldown)

    extra = set(pullup.variables()) - set(pulldown.variables())
    if extra:
        raise ValueError(
            f"the pull-up lattice uses inputs {sorted(extra)} the pull-down lattice does not"
        )

    circuit = Circuit(title or f"complementary_{pulldown.rows}x{pulldown.cols}")
    VoltageSource(circuit, "vdd_supply", SUPPLY_NODE, GROUND, DC(supply_v))
    Capacitor(circuit, "c_out", OUTPUT_NODE, GROUND, output_capacitance_f)

    literals_used = sorted(
        {
            str(switch)
            for lattice in (pulldown, pullup)
            for _, switch in lattice.switches()
            if not switch.is_constant
        }
    )
    waveforms: Dict[str, Waveform] = {}
    if input_sequence is not None:
        waveforms = dict(input_waveforms(input_sequence))

    gate_sources: Dict[str, VoltageSource] = {}
    gate_node_of: Dict[str, str] = {}
    for literal_text in literals_used:
        gate_node = "g_" + literal_text.replace("'", "_n")
        gate_node_of[literal_text] = gate_node
        if input_sequence is not None:
            if literal_text not in waveforms:
                raise ValueError(f"the input sequence does not drive literal {literal_text!r}")
            value: Waveform = waveforms[literal_text]
        elif static_assignment is not None:
            literal = Literal.parse(literal_text)
            if literal.variable not in static_assignment:
                raise ValueError(f"static assignment is missing input {literal.variable!r}")
            logic = bool(static_assignment[literal.variable]) ^ literal.negated
            value = DC(supply_v if logic else 0.0)
        else:
            value = DC(0.0)
        gate_sources[literal_text] = VoltageSource(
            circuit, f"vg_{gate_node[2:]}", gate_node, GROUND, value
        )

    # Pull-up lattice between the supply and the output, pull-down between
    # the output and ground.
    _instantiate_lattice(
        circuit, pullup, "pu", SUPPLY_NODE, OUTPUT_NODE, model, gate_node_of, node_capacitance_f
    )
    _instantiate_lattice(
        circuit, pulldown, "pd", OUTPUT_NODE, GROUND, model, gate_node_of, node_capacitance_f
    )

    return ComplementaryLatticeCircuit(
        circuit=circuit,
        pulldown=pulldown,
        pullup=pullup,
        supply_v=supply_v,
        gate_sources=gate_sources,
        input_sequence=input_sequence,
    )
