"""repro.service — the HTTP front door over the declarative API.

The layers below this package (PRs 4-8) already provide everything a
service needs: content-hashed specs, a shared
:class:`~repro.api.stores.Store` seam, bit-exact Result JSON and per-run
:class:`~repro.api.session.RunStats`.  This package adds the subsystem
that lets a client who does not write Python use them over HTTP:

* **wire format** — :func:`repro.api.spec_to_dict` /
  :func:`repro.api.spec_from_dict` (in :mod:`repro.api.codec`): every
  analysis spec as JSON, hash-identical across the round trip, with
  strict, path-annotated :class:`~repro.api.codec.SpecDecodeError`\\ s;
* **jobs** (:mod:`repro.service.jobs`) — :class:`JobManager` maps
  submissions to spec-hash job ids, dedupes through the store (a million
  identical submissions cost one solve), and runs misses on a bounded
  worker pool with per-job timeout, bounded retry and graceful drain;
* **journal** (:mod:`repro.service.journal`) — an append-only JSONL
  :class:`JobJournal` making acknowledged jobs durable: a manager
  restarted over the same journal replays every non-terminal job, so a
  ``kill -9`` mid-queue loses nothing;
* **HTTP** (:mod:`repro.service.app`) — a stdlib
  ``ThreadingHTTPServer`` app: ``POST /studies``, ``GET /studies/{id}``,
  ``GET /studies/{id}/result`` (sparse ``?fields=``), paginated
  ``GET /results``, ``GET /healthz`` and ``GET /metrics``;
* **client** (:mod:`repro.service.client`) — :class:`ServiceClient`,
  whose :meth:`~repro.service.client.ServiceClient.run` is the
  over-the-wire twin of ``Session.run`` (bitwise-identical Result JSON,
  pinned in the test-suite).

Quickstart::

    from repro.service import serve, ServiceClient
    from repro.api import CircuitSpec, DCOp

    server = serve(store="study-cache", workers=4)
    client = ServiceClient(server.url)
    result = client.run(DCOp(circuit=CircuitSpec(
        "repro.circuits.series_chain:build_series_chain",
        params={"num_switches": 5},
    )))
    server.close()
"""

from repro.service.app import RESULT_SECTIONS, StudyServer, StudyService, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.journal import JobJournal
from repro.service.jobs import (
    JOB_STATES,
    JobManager,
    JobNotDone,
    JobView,
    ServiceClosed,
    UnknownJob,
)

__all__ = [
    "JOB_STATES",
    "JobJournal",
    "JobManager",
    "JobNotDone",
    "JobView",
    "RESULT_SECTIONS",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "StudyServer",
    "StudyService",
    "UnknownJob",
    "serve",
]
