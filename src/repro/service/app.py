"""The HTTP front door: spec JSON in, job ids and Result JSON out.

Zero hard dependencies beyond the standard library — the server is a
:class:`http.server.ThreadingHTTPServer` so any machine that can run the
engine can serve it.  The HTTP layer is deliberately thin: all routing and
payload logic lives in the transport-agnostic :class:`StudyService` (tests
drive it directly, without sockets), and all execution/dedupe logic lives
in :class:`~repro.service.jobs.JobManager`.

Endpoints
---------

====== ============================ ==========================================
POST   ``/studies``                 submit a spec (:func:`repro.api.spec_from_dict`
                                    wire form) -> ``{"id", "state", "cached"}``;
                                    the id is the spec content hash, so
                                    identical submissions share one job
GET    ``/studies/{id}``            job status + read-only RunStats counters
GET    ``/studies/{id}/result``     the Result JSON, with sparse field
                                    selection via ``?fields=scalars,meta``
GET    ``/results``                 paginated store listing
                                    (``?kind=&limit=&offset=&fields=``)
GET    ``/healthz``                 liveness + worker/queue snapshot
GET    ``/metrics``                 JSON counters: requests by route/status,
                                    cache hits vs computes, queue depth,
                                    solve wall-time histogram
====== ============================ ==========================================

Every error is a JSON body ``{"error": ...}`` with a 4xx status and an
actionable message — malformed JSON, unknown spec kinds, disallowed or
unresolvable factory paths, oversized payloads and unknown job ids never
surface as a 500 traceback.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api.codec import SpecDecodeError, spec_from_dict
from repro.api.results import ResultSet
from repro.service.jobs import JobManager, JobNotDone, ServiceClosed, UnknownJob

__all__ = ["StudyService", "StudyServer", "serve", "RESULT_SECTIONS"]

#: Top-level Result sections ``?fields=`` may select; identity fields
#: (kind/spec_hash/schema_version) are always included.
RESULT_SECTIONS = (
    "arrays",
    "scalars",
    "convergence",
    "provenance",
    "meta",
    "children",
)
_ALWAYS_FIELDS = ("schema_version", "kind", "spec_hash")

#: Default request-body ceiling (a spec is a few KB; 2 MiB is generous).
MAX_BODY_BYTES = 2 * 1024 * 1024

#: Hard ceiling on one ``GET /results`` page.
MAX_PAGE_LIMIT = 500


class _HTTPError(Exception):
    """Internal control flow: abort the request with a status + message."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ):
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        super().__init__(message)


class StudyService:
    """Transport-agnostic request core (see the module docstring).

    Parameters
    ----------
    manager:
        The :class:`~repro.service.jobs.JobManager` that runs submissions.
    allowed_factory_prefixes:
        Import-path namespaces submitted circuit factories may live in
        (checked *before* anything is imported).  Defaults to
        ``("repro.",)``; pass your own tuple to open other namespaces, or
        ``None`` to disable the check entirely (trusted clients only).
    max_body_bytes:
        Request-body ceiling; larger submissions get a 413.
    max_queue_depth:
        Load shedding: when this many jobs are already waiting for a
        worker, ``POST /studies`` is refused up front with a 503 carrying
        a ``Retry-After`` header (``retry_after_s``) instead of letting
        the backlog grow without bound.  ``None`` (default): never shed.
    retry_after_s:
        The ``Retry-After`` value (seconds) a shed submission receives.
    """

    def __init__(
        self,
        manager: JobManager,
        allowed_factory_prefixes: Optional[Sequence[str]] = ("repro.",),
        max_body_bytes: int = MAX_BODY_BYTES,
        max_queue_depth: Optional[int] = None,
        retry_after_s: float = 1.0,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {retry_after_s}"
            )
        self.manager = manager
        self.allowed_factory_prefixes = allowed_factory_prefixes
        self.max_body_bytes = max_body_bytes
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._requests: Dict[str, Dict[str, int]] = {}
        self._shed_count = 0

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def handle(
        self, method: str, target: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, Any]]:
        """Handle one request; returns ``(status, JSON-safe payload)``.

        ``target`` is the request target (path plus optional query
        string).  Never raises: every failure maps to a status code and an
        ``{"error": ...}`` payload.
        """
        status, payload, _headers = self.handle_request(method, target, body)
        return status, payload

    def handle_request(
        self, method: str, target: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Like :meth:`handle`, plus the extra response headers.

        The third element carries response headers beyond Content-Type —
        today that is ``Retry-After`` on shed submissions (503 when the
        queue is past ``max_queue_depth``).
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query, keep_blank_values=True).items()
        }
        route, status, payload, headers = self._dispatch(method, path, query, body)
        self._count_request(method, route, status)
        return status, payload, headers

    def _dispatch(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> Tuple[str, int, Dict[str, Any], Dict[str, str]]:
        # Resolve the route *template* before handling: the request
        # counters must key on '/studies/{id}', never the raw path, or a
        # long-running server leaks one counter entry per distinct path
        # probed (404 scans, per-job polling).  Unmatched paths share one
        # 'unknown' bucket.
        parts = [part for part in path.split("/") if part]
        route = "unknown"
        try:
            if parts == ["studies"]:
                route = "/studies"
                self._require_method(method, "POST")
                return (route, *self._post_study(body), {})
            if len(parts) == 2 and parts[0] == "studies":
                route = "/studies/{id}"
                self._require_method(method, "GET")
                return (route, *self._get_study(parts[1]), {})
            if len(parts) == 3 and parts[0] == "studies" and parts[2] == "result":
                route = "/studies/{id}/result"
                self._require_method(method, "GET")
                return (route, *self._get_study_result(parts[1], query), {})
            if parts == ["results"]:
                route = "/results"
                self._require_method(method, "GET")
                return (route, *self._get_results(query), {})
            if parts == ["healthz"]:
                route = "/healthz"
                self._require_method(method, "GET")
                return (route, *self._get_healthz(), {})
            if parts == ["metrics"]:
                route = "/metrics"
                self._require_method(method, "GET")
                return (route, *self._get_metrics(), {})
            raise _HTTPError(
                404,
                f"unknown route {path!r}; see POST /studies, GET /studies/{{id}}, "
                "GET /studies/{id}/result, GET /results, GET /healthz, "
                "GET /metrics",
            )
        except _HTTPError as error:
            return route, error.status, {"error": error.message}, error.headers
        except Exception as error:  # noqa: BLE001 — no tracebacks on the wire
            return (
                route,
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
                {},
            )

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed; use {expected}")

    def _count_request(self, method: str, route: str, status: int) -> None:
        key = f"{method} {route}"
        with self._lock:
            self._requests.setdefault(key, {})
            self._requests[key][str(status)] = (
                self._requests[key].get(str(status), 0) + 1
            )

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #

    def _post_study(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        if (
            self.max_queue_depth is not None
            and self.manager.queue_depth >= self.max_queue_depth
        ):
            # Shed before parsing anything: a saturated service should
            # spend no cycles on work it is about to refuse.  Honest
            # clients back off by the Retry-After header (ServiceClient
            # honors it automatically).
            with self._lock:
                self._shed_count += 1
            raise _HTTPError(
                503,
                f"queue depth {self.manager.queue_depth} is at the "
                f"{self.max_queue_depth}-job limit; retry after "
                f"{self.retry_after_s:g}s",
                headers={"Retry-After": f"{self.retry_after_s:g}"},
            )
        if len(body) > self.max_body_bytes:
            raise _HTTPError(
                413,
                f"request body of {len(body)} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(
                400, f"request body is not valid JSON: {error}"
            ) from None
        try:
            spec = spec_from_dict(
                payload, allowed_factory_prefixes=self.allowed_factory_prefixes
            )
        except SpecDecodeError as error:
            raise _HTTPError(400, f"invalid spec: {error}") from None
        try:
            view = self.manager.submit(spec)
        except ServiceClosed as error:
            raise _HTTPError(503, str(error)) from None
        status = 200 if view.cached else 202
        return status, {
            "id": view.id,
            "state": view.state,
            "cached": view.cached,
            "location": f"/studies/{view.id}",
        }

    def _get_study(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        try:
            view = self.manager.status(job_id)
        except UnknownJob as error:
            raise _HTTPError(404, str(error.args[0])) from None
        return 200, view.to_dict()

    def _get_study_result(
        self, job_id: str, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        fields = self._parse_fields(query)
        self._reject_unknown_query(query, {"fields"})
        try:
            result = self.manager.result(job_id)
        except UnknownJob as error:
            raise _HTTPError(404, str(error.args[0])) from None
        except JobNotDone as error:
            if error.state == "failed":
                raise _HTTPError(409, f"job failed: {error.error}") from None
            if error.error and "evicted" in error.error:
                raise _HTTPError(410, error.error) from None
            raise _HTTPError(
                409,
                f"job is {error.state}; poll GET /studies/{job_id} until it "
                "is done",
            ) from None
        return 200, self._render_result(result.to_jsonable(), fields)

    def _get_results(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        fields = self._parse_fields(query)
        kind = query.get("kind") or None
        limit = self._parse_int(query, "limit", default=50, minimum=0)
        offset = self._parse_int(query, "offset", default=0, minimum=0)
        self._reject_unknown_query(query, {"fields", "kind", "limit", "offset"})
        if limit > MAX_PAGE_LIMIT:
            raise _HTTPError(
                400, f"limit {limit} exceeds the page ceiling of {MAX_PAGE_LIMIT}"
            )
        page = ResultSet.from_store(
            self.manager.store, kind=kind, limit=limit, offset=offset
        )
        # Store.count never deserializes what it doesn't have to (len()
        # when unfiltered, SQL/in-memory kind counts where available) —
        # 'total' must not cost O(store) JSON parses per page.
        total = self.manager.store.count(kind=kind)
        return 200, {
            "results": [
                self._render_result(result.to_jsonable(), fields) for result in page
            ],
            "kind": kind,
            "limit": limit,
            "offset": offset,
            "returned": len(page),
            "total": total,
        }

    def _get_healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "ok",
            "workers": self.manager.worker_count,
            "queue_depth": self.manager.queue_depth,
        }

    def _get_metrics(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            requests = {
                route: dict(statuses) for route, statuses in self._requests.items()
            }
            shed = self._shed_count
        payload: Dict[str, Any] = {
            "requests": requests,
            "shed_submissions": shed,
            "jobs": self.manager.metrics(),
        }
        # A resilience-wrapped store (ResilientStore) exposes breaker state
        # and degradation counters; surface them so operators can see
        # store trouble from the same endpoint as everything else.
        store_metrics = getattr(self.manager.store, "metrics", None)
        if callable(store_metrics):
            store_payload = store_metrics()
            payload["store"] = store_payload
            payload["store_degraded"] = store_payload.get("degraded", 0)
        return 200, payload

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _parse_fields(query: Dict[str, str]) -> Optional[Tuple[str, ...]]:
        raw = query.get("fields")
        if raw is None or raw == "":
            return None
        fields = tuple(name.strip() for name in raw.split(",") if name.strip())
        unknown = sorted(set(fields) - set(RESULT_SECTIONS))
        if unknown:
            raise _HTTPError(
                400,
                f"unknown result fields {unknown}; selectable sections: "
                f"{sorted(RESULT_SECTIONS)}",
            )
        return fields

    @staticmethod
    def _parse_int(
        query: Dict[str, str], name: str, default: int, minimum: int
    ) -> int:
        raw = query.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name}={raw!r} is not an integer"
            ) from None
        if value < minimum:
            raise _HTTPError(400, f"query parameter {name} must be >= {minimum}")
        return value

    @staticmethod
    def _reject_unknown_query(query: Dict[str, str], known: set) -> None:
        unknown = sorted(set(query) - known)
        if unknown:
            raise _HTTPError(
                400,
                f"unknown query parameters {unknown}; supported: {sorted(known)}",
            )

    @staticmethod
    def _render_result(
        payload: Dict[str, Any], fields: Optional[Tuple[str, ...]]
    ) -> Dict[str, Any]:
        if fields is None:
            return payload
        selected = {name: payload[name] for name in _ALWAYS_FIELDS if name in payload}
        for name in fields:
            if name in payload:
                selected[name] = payload[name]
        return selected


# ---------------------------------------------------------------------- #
# the HTTP shell
# ---------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    """Thin socket shell around :meth:`StudyService.handle`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> StudyService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # route/status counters live in /metrics; stay quiet on stderr

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        status, payload, headers = self.service.handle_request("GET", self.path)
        self._respond(status, payload, headers)

    def do_POST(self) -> None:  # noqa: N802
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._respond(411, {"error": "POST requires a Content-Length header"})
            return
        try:
            length = int(length_header)
        except ValueError:
            self._respond(400, {"error": "Content-Length is not an integer"})
            return
        if length > self.service.max_body_bytes:
            # Refuse before reading; the client gets the byte budget.
            self._respond(
                413,
                {
                    "error": (
                        f"request body of {length} bytes exceeds the "
                        f"{self.service.max_body_bytes}-byte limit"
                    )
                },
            )
            self.close_connection = True
            return
        body = self.rfile.read(length)
        status, payload, headers = self.service.handle_request(
            "POST", self.path, body
        )
        self._respond(status, payload, headers)


class StudyServer:
    """A running study-submission server (background thread, owned port).

    ``port=0`` (default) binds an ephemeral port — read :attr:`url` after
    construction.  ``close()`` stops the HTTP listener and shuts the job
    manager down (draining by default).
    """

    def __init__(
        self,
        service: StudyService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self, drain: bool = True) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=10)
        self.service.manager.close(drain=drain)

    def __enter__(self) -> "StudyServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve(
    store: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    allowed_factory_prefixes: Optional[Sequence[str]] = ("repro.",),
    max_queue_depth: Optional[int] = None,
    retry_after_s: float = 1.0,
    resilient: bool = False,
    **manager_kwargs: Any,
) -> StudyServer:
    """One-call server: build the manager + service + HTTP listener.

    ``store`` is anything :class:`~repro.api.session.Session` accepts
    (a Store instance, a directory path, or None for in-memory);
    ``resilient=True`` wraps it in a default-policy
    :class:`~repro.api.stores.ResilientStore` so storage trouble degrades
    the cache instead of failing studies; ``max_queue_depth`` /
    ``retry_after_s`` configure submission shedding (see
    :class:`StudyService`); ``manager_kwargs`` pass through to
    :class:`~repro.service.jobs.JobManager` (``job_timeout_s``,
    ``max_retries``, ``journal``, ...).
    """
    from repro.api.stores import (
        JSONDirectoryStore,
        MemoryStore,
        ResilientStore,
        Store,
        TieredStore,
    )

    if store is None:
        resolved: Store = MemoryStore()
    elif isinstance(store, Store):
        resolved = store
    elif isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        resolved = TieredStore(MemoryStore(), JSONDirectoryStore(store))
    else:
        raise TypeError(
            "store must be a repro.api.stores.Store, a directory path, or None"
        )
    if resilient and not isinstance(resolved, ResilientStore):
        resolved = ResilientStore(resolved)
    manager = JobManager(store=resolved, workers=workers, **manager_kwargs)
    service = StudyService(
        manager,
        allowed_factory_prefixes=allowed_factory_prefixes,
        max_queue_depth=max_queue_depth,
        retry_after_s=retry_after_s,
    )
    return StudyServer(service, host=host, port=port)
