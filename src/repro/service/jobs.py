"""The async job manager behind the study-submission API.

A :class:`JobManager` maps submitted analysis specs onto *jobs* keyed by
the spec's content hash (:func:`repro.api.hashing.spec_hash`) — the same
key the result stores use, which makes the manager a dedupe layer in three
tiers:

1. **live-job dedupe** — a spec submitted while an identical job is
   queued or running joins that job instead of spawning a second solve,
   however many clients race on the POST;
2. **record dedupe** — resubmitting a spec whose job already finished
   returns the finished job immediately (``cached`` submissions never
   enqueue work);
3. **store dedupe** — a fresh manager (service restart) checks the shared
   :class:`~repro.api.stores.Store` before queueing: a warm store turns
   the submission into an instantly-``done`` job with zero Newton work.

Jobs run on a bounded pool of background worker threads, each owning its
own :class:`~repro.api.session.Session` over the shared store (sessions
are not thread-safe; stores are the sharing seam).  Every job walks the
state machine ``queued -> running -> done | failed`` with a per-job wall
clock timeout and a bounded retry budget; :meth:`JobManager.close` drains
gracefully (finish queued work, then stop) or cancels.

The manager is transport-agnostic — :mod:`repro.service.app` puts HTTP in
front of it, but it is equally usable in-process::

    manager = JobManager(store=SQLiteStore("results.db"), workers=4)
    view = manager.submit(DCOp(circuit=chain))
    manager.join()
    result = manager.result(view.id)
"""

from __future__ import annotations

import dataclasses
import os
import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.hashing import spec_hash
from repro.api.results import Result
from repro.api.session import RunStatsSnapshot, Session
from repro.api.specs import AnalysisSpec
from repro.api.stores import MemoryStore, Store
from repro.service.journal import (
    JobJournal,
    decode_spec_payload,
    encode_spec_payload,
)

__all__ = [
    "JOB_STATES",
    "JobManager",
    "JobNotDone",
    "JobView",
    "ServiceClosed",
    "UnknownJob",
]

#: The job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Upper edges (ms) of the solve wall-time histogram buckets; the last
#: bucket is open-ended.  Powers-of-~3 cover sub-ms store hits up to
#: minutes-long lattice studies in 10 buckets.
WALL_MS_BUCKETS = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0)


class UnknownJob(KeyError):
    """No job with the given id has been submitted to this manager."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(
            f"unknown job {job_id!r}; job ids are the spec content hashes "
            "returned by submit()"
        )


class JobNotDone(RuntimeError):
    """The job exists but has not produced a result (yet, or at all)."""

    def __init__(self, job_id: str, state: str, error: Optional[str] = None):
        self.job_id = job_id
        self.state = state
        self.error = error
        detail = f" ({error})" if error else ""
        super().__init__(f"job {job_id!r} is {state}{detail}")


class ServiceClosed(RuntimeError):
    """The manager is shutting down and accepts no new submissions."""


@dataclass(frozen=True)
class JobView:
    """A read-only snapshot of one job (what status endpoints hand out)."""

    id: str
    kind: str
    state: str
    cached: bool
    attempts: int
    error: Optional[str]
    created_s: float
    started_s: Optional[float]
    finished_s: Optional[float]
    wall_s: Optional[float]
    stats: Optional[RunStatsSnapshot]

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["stats"] = self.stats.to_dict() if self.stats is not None else None
        return payload


@dataclass
class _Job:
    """The manager's mutable job record (never leaves the lock)."""

    id: str
    spec: AnalysisSpec
    state: str = "queued"
    cached: bool = False
    attempts: int = 0
    error: Optional[str] = None
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    stats: Optional[RunStatsSnapshot] = None

    def view(self, cached: Optional[bool] = None) -> JobView:
        wall_s = None
        if self.started_s is not None and self.finished_s is not None:
            wall_s = self.finished_s - self.started_s
        return JobView(
            id=self.id,
            kind=self.spec.kind,
            state=self.state,
            cached=self.cached if cached is None else cached,
            attempts=self.attempts,
            error=self.error,
            created_s=self.created_s,
            started_s=self.started_s,
            finished_s=self.finished_s,
            wall_s=wall_s,
            stats=self.stats,
        )


class _Stop:
    """Queue sentinel shutting one worker down."""


class _AttemptTimeout(TimeoutError):
    """An attempt blew its wall-clock budget (the session is poisoned)."""


class JobManager:
    """Run submitted specs on a bounded worker pool over a shared store.

    Parameters
    ----------
    store:
        The shared :class:`~repro.api.stores.Store` results land in and
        dedupe through (an in-memory LRU store when omitted).  Pass a
        persistent store to survive restarts warm.
    workers:
        Background worker threads (>= 1).  Each owns a private Session
        over the shared store, so distinct jobs solve concurrently while
        identical ones collapse onto one job id.
    job_timeout_s:
        Wall-clock budget per attempt.  ``None`` (default) means
        unbounded.  A timed-out attempt counts against the retry budget;
        the abandoned solve cannot be interrupted mid-LAPACK-call, so the
        worker walks away from its session and builds a fresh one —
        the rogue thread finishes (or not) in the background without
        touching any job state.
    max_retries:
        How many times a failed/timed-out attempt is requeued before the
        job goes ``failed`` (default 0: one attempt only).
    session_factory:
        Override how worker sessions are built (tests inject stat
        spies); defaults to ``Session(store=<shared store>)``.
    journal:
        A :class:`~repro.service.journal.JobJournal` (or a path to one)
        making acknowledged jobs durable: every submission is journaled
        before ``submit()`` returns, and a fresh manager over the same
        journal *replays* it — each job whose journal history is not
        terminal is re-queued idempotently (the shared store is consulted
        first, so already-finished work becomes an instant ``done``).
        ``None`` (default): no journal, the pre-existing in-memory
        behaviour.  A journal write failure never fails the job — it is
        counted in ``journal_errors`` and warned about once; durability
        degrades, availability does not.
    journal_fsync:
        When ``journal`` is a path: fsync every journal append (survives
        power loss, costs ~1 ms/record).  Off by default — the plain
        flush already survives ``kill -9``.
    """

    def __init__(
        self,
        store: Optional[Store] = None,
        workers: int = 2,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 0,
        session_factory: Optional[Callable[[], Session]] = None,
        journal: Optional[Union[str, os.PathLike, JobJournal]] = None,
        journal_fsync: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"at least one worker is required, got {workers}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError(f"job_timeout_s must be positive, got {job_timeout_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store: Store = store if store is not None else MemoryStore()
        self.job_timeout_s = job_timeout_s
        self.max_retries = max_retries
        self._session_factory = session_factory or (
            lambda: Session(store=self.store)
        )
        if journal is None or isinstance(journal, JobJournal):
            self.journal: Optional[JobJournal] = journal
        else:
            self.journal = JobJournal(os.fspath(journal), fsync=journal_fsync)
        self._warned_journal = False
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._settled = threading.Condition(self._lock)
        self._closed = False
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "computed": 0,
            "cache_hits": 0,
            "failed": 0,
            "retries": 0,
            "timeouts": 0,
            "newton_iterations": 0,
            "recovered": 0,
            "journal_errors": 0,
        }
        self._wall_histogram: List[int] = [0] * (len(WALL_MS_BUCKETS) + 1)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        if self.journal is not None:
            self._recover()
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------ #
    # submission and inspection
    # ------------------------------------------------------------------ #

    def submit(self, spec: AnalysisSpec) -> JobView:
        """Submit a spec; returns the (possibly pre-existing) job snapshot.

        The returned view's ``cached`` flag tells whether *this* submission
        was served without enqueueing new work — an identical job already
        live or finished, or the shared store already holding the result.
        A ``failed`` job is re-armed and queued again by a fresh
        submission.
        """
        if not isinstance(spec, AnalysisSpec):
            raise TypeError(
                f"submit() takes an analysis spec, got {type(spec).__qualname__}"
            )
        job_id = spec_hash(spec)
        with self._lock:
            if self._closed:
                raise ServiceClosed("the job manager is shut down")
            self._counters["submitted"] += 1
            job = self._jobs.get(job_id)
            if job is not None and job.state != "failed":
                # done: served from the finished record; queued/running:
                # the submission joins the live job.  Both are dedupe hits
                # (no new work enqueued), so both count in cache_hits.
                self._counters["cache_hits"] += 1
                return job.view(cached=True)
            cached_result = self.store.get(job_id)
            if cached_result is not None:
                job = _Job(id=job_id, spec=spec, state="done", cached=True)
                job.started_s = job.finished_s = job.created_s
                job.stats = RunStatsSnapshot(cached=1)
                self._jobs[job_id] = job
                self._counters["cache_hits"] += 1
                self._settled.notify_all()
                return job.view()
            if job is not None:  # failed: re-arm
                job.state = "queued"
                job.error = None
                job.attempts = 0
                job.created_s = time.time()
                job.started_s = job.finished_s = None
            else:
                job = _Job(id=job_id, spec=spec)
                self._jobs[job_id] = job
            self._append_journal("submit", job_id, spec=spec)
            self._queue.put(job)
            return job.view()

    def status(self, job_id: str) -> JobView:
        """The current snapshot of a job; raises :class:`UnknownJob`."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            return job.view()

    def jobs(self) -> List[JobView]:
        """Snapshots of every job this manager knows, newest first."""
        with self._lock:
            views = [job.view() for job in self._jobs.values()]
        return sorted(views, key=lambda view: view.created_s, reverse=True)

    def result(self, job_id: str) -> Result:
        """The finished job's :class:`~repro.api.results.Result`.

        Raises :class:`UnknownJob` for an unsubmitted id and
        :class:`JobNotDone` for a job that is still queued/running or has
        failed (the exception carries the state and error).
        """
        view = self.status(job_id)
        if view.state != "done":
            raise JobNotDone(job_id, view.state, view.error)
        result = self.store.get(job_id)
        if result is None:
            # Evicted/expired between completion and the fetch: honest 410
            # material, not a silent recompute.
            raise JobNotDone(
                job_id, "done", "result evicted from the store; resubmit the spec"
            )
        return result

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker (approximate, racy by nature)."""
        return self._queue.qsize()

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def metrics(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of the manager's counters and histogram."""
        with self._lock:
            counters = dict(self._counters)
            histogram = list(self._wall_histogram)
        buckets = {
            f"le_{edge:g}ms": count
            for edge, count in zip(WALL_MS_BUCKETS, histogram)
        }
        buckets["inf"] = histogram[-1]
        return {
            **counters,
            "queue_depth": self.queue_depth,
            "workers": self.worker_count,
            "solve_wall_ms_histogram": buckets,
        }

    # ------------------------------------------------------------------ #
    # durability (the job journal)
    # ------------------------------------------------------------------ #

    def _append_journal(
        self,
        event: str,
        job_id: str,
        spec: Optional[AnalysisSpec] = None,
        error: Optional[str] = None,
    ) -> None:
        """Journal a transition; a failed append degrades, never raises."""
        if self.journal is None:
            return
        try:
            payload = None if spec is None else encode_spec_payload(spec)
            self.journal.append(event, job_id, spec=payload, error=error)
        except OSError as journal_error:
            self._counters["journal_errors"] += 1
            if not self._warned_journal:
                self._warned_journal = True
                warnings.warn(
                    f"job journal append failed ({journal_error}); jobs keep "
                    "running but are no longer durable across a restart",
                    RuntimeWarning,
                    stacklevel=3,
                )

    def _recover(self) -> None:
        """Re-queue every journaled job whose history is not terminal.

        Runs once, from ``__init__``, before the workers start.  Recovery
        is idempotent by construction: job ids are spec hashes, so a
        recovered job dedupes against the store exactly like a live
        submission — work that finished before the crash (or between
        crash and restart) becomes an instant ``done`` with zero Newton
        work, and only genuinely unfinished specs re-enter the queue.
        """
        assert self.journal is not None
        for job_id, record in self.journal.replay().items():
            try:
                spec = decode_spec_payload(record.spec or {})
                actual = spec_hash(spec)
                if actual != job_id:
                    raise ValueError(
                        f"journaled spec hashes to {actual!r}, not the "
                        f"journaled id {job_id!r}"
                    )
            except Exception as error:  # noqa: BLE001 — quarantine, don't die
                warnings.warn(
                    f"job journal: cannot recover job {job_id!r} "
                    f"({type(error).__name__}: {error}); marking it failed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._append_journal(
                    "fail", job_id, error=f"unrecoverable journal record: {error}"
                )
                continue
            with self._lock:
                if job_id in self._jobs:
                    continue
                self._counters["recovered"] += 1
                cached_result = self.store.get(job_id)
                if cached_result is not None:
                    job = _Job(id=job_id, spec=spec, state="done", cached=True)
                    job.started_s = job.finished_s = job.created_s
                    job.stats = RunStatsSnapshot(cached=1)
                    self._jobs[job_id] = job
                    self._append_journal("finish", job_id)
                    self._settled.notify_all()
                    continue
                job = _Job(id=job_id, spec=spec)
                self._jobs[job_id] = job
                self._queue.put(job)
        try:
            self.journal.compact()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # waiting and shutdown
    # ------------------------------------------------------------------ #

    def join(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every submitted job has settled (done or failed).

        Returns ``False`` on timeout.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._settled:
            while any(
                job.state in ("queued", "running") for job in self._jobs.values()
            ):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._settled.wait(timeout=remaining)
        return True

    def close(self, drain: bool = True, timeout_s: Optional[float] = None) -> None:
        """Shut the pool down; idempotent.

        ``drain=True`` (graceful): stop accepting submissions, let the
        workers finish everything already queued, then stop them.
        ``drain=False``: additionally mark still-queued jobs ``failed``
        ("cancelled at shutdown") so clients polling them see a terminal
        state instead of an eternal ``queued``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for job in self._jobs.values():
                    if job.state == "queued":
                        job.state = "failed"
                        job.error = "cancelled at shutdown"
                        job.finished_s = time.time()
                        self._counters["failed"] += 1
                        self._append_journal("cancel", job.id)
                self._settled.notify_all()
        for _ in self._workers:
            self._queue.put(_Stop)
        for thread in self._workers:
            thread.join(timeout=timeout_s)
        if self.journal is not None:
            try:
                self.journal.compact()
            except OSError:
                pass
            self.journal.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the worker side
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        session = self._session_factory()
        while True:
            item = self._queue.get()
            if item is _Stop:
                return
            job: _Job = item
            with self._lock:
                if job.state != "queued":  # cancelled at shutdown
                    continue
                job.state = "running"
                job.started_s = time.time()
                job.attempts += 1
                self._append_journal("start", job.id)
            try:
                stats = self._run_attempt(session, job)
                poisoned = False
                failure = None
            except _AttemptTimeout as error:
                stats, poisoned = None, True
                failure = f"TimeoutError: {error}"
            except Exception as error:  # noqa: BLE001 — job isolation
                stats, poisoned = None, False
                failure = f"{type(error).__name__}: {error}"
            if poisoned:
                # The timed-out attempt may still be running inside the old
                # session; never share it with the next job.
                session = self._session_factory()
            with self._lock:
                if failure is None and stats is not None:
                    job.state = "done"
                    job.error = None
                    job.finished_s = time.time()
                    job.cached = stats.computed == 0
                    job.stats = stats
                    self._counters["computed"] += stats.computed
                    self._counters["cache_hits"] += stats.cached
                    self._counters["newton_iterations"] += stats.newton_iterations
                    self._observe_wall_ms((job.finished_s - job.started_s) * 1e3)
                    self._append_journal("finish", job.id)
                    self._settled.notify_all()
                    continue
                if job.attempts <= self.max_retries and not self._closed:
                    job.state = "queued"
                    job.error = failure
                    self._counters["retries"] += 1
                    self._queue.put(job)
                    continue
                job.state = "failed"
                job.error = failure
                job.finished_s = time.time()
                self._counters["failed"] += 1
                self._append_journal("fail", job.id, error=failure)
                self._settled.notify_all()

    def _run_attempt(self, session: Session, job: _Job) -> RunStatsSnapshot:
        """One attempt; returns the stats snapshot or raises the failure."""
        if self.job_timeout_s is None:
            session.run(job.spec)
            return session.last_stats_snapshot()
        box: Dict[str, Any] = {}

        def attempt() -> None:
            try:
                session.run(job.spec)
                box["stats"] = session.last_stats_snapshot()
            except BaseException as error:  # noqa: BLE001 — relayed below
                box["error"] = error

        thread = threading.Thread(
            target=attempt, name=f"repro-service-job-{job.id[:12]}", daemon=True
        )
        thread.start()
        thread.join(timeout=self.job_timeout_s)
        if thread.is_alive():
            with self._lock:
                self._counters["timeouts"] += 1
            raise _AttemptTimeout(
                f"attempt exceeded the {self.job_timeout_s:g}s job timeout"
            )
        if "error" in box:
            raise box["error"]
        return box["stats"]

    def _observe_wall_ms(self, wall_ms: float) -> None:
        for index, edge in enumerate(WALL_MS_BUCKETS):
            if wall_ms <= edge:
                self._wall_histogram[index] += 1
                return
        self._wall_histogram[-1] += 1
