"""A durable, append-only job journal for the service job manager.

The :class:`~repro.service.jobs.JobManager` acknowledges a submission the
moment ``submit()`` returns — from then on the client polls a job id and
expects a terminal answer.  Without a journal that acknowledgement lives
only in process memory: a ``kill -9`` (OOM kill, node loss, deploy) throws
away every queued and running job silently, and clients poll a 404
forever.  :class:`JobJournal` makes the acknowledgement durable:

* the manager appends one JSONL record per job state transition —
  ``submit`` (carrying the spec's wire form), ``start``, ``finish``,
  ``fail``, ``cancel`` — each record a single atomic ``O_APPEND`` write
  of one complete line, flushed to the OS before ``submit()`` returns
  (so process death loses nothing; ``fsync=True`` extends that to power
  loss);
* a restarted manager *replays* the journal: every job whose last record
  is not terminal is re-queued idempotently by its spec-hash id — the
  shared store is checked first, so work that finished between the crash
  and the restart becomes an instant ``done`` rather than a recompute,
  and duplicates collapse exactly as live submissions do;
* :meth:`JobJournal.compact` rewrites the file keeping only the
  ``submit`` records of still-pending jobs (terminal histories add
  nothing a restart needs — finished results live in the store), so the
  journal stays proportional to the backlog, not to service lifetime.
  The manager compacts automatically after recovery and on clean
  shutdown, and the journal self-compacts after ``auto_compact_records``
  appends.

A torn trailing line (power loss mid-append) is skipped with a one-time
warning — the record being appended was by definition not yet
acknowledged under ``fsync``, and under buffered appends it is exactly
the sub-line tail the durability knob warns about.

Specs travel in the journal as their :func:`repro.api.spec_to_dict` wire
form when they have one; specs carrying rich Python objects (an in-memory
switch model in the params) fall back to a pickle blob.  The journal is
written and read only by the service that owns it — the pickle fallback
never crosses a trust boundary a submitted spec has not already crossed.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.api.codec import spec_from_dict, spec_to_dict
from repro.api.specs import AnalysisSpec

__all__ = ["JobJournal", "JournalRecord", "decode_spec_payload", "encode_spec_payload"]

#: Journal record schema version.
JOURNAL_VERSION = 1

#: The job lifecycle events a journal records, in no particular order.
JOURNAL_EVENTS = ("submit", "start", "finish", "fail", "cancel")

#: Events after which a job needs nothing from a restart.
TERMINAL_EVENTS = frozenset({"finish", "fail", "cancel"})


def encode_spec_payload(spec: AnalysisSpec) -> Dict[str, Any]:
    """The journal's spec payload: codec wire form, or a pickle fallback."""
    try:
        return {"codec": spec_to_dict(spec)}
    except TypeError:
        blob = base64.b64encode(pickle.dumps(spec)).decode("ascii")
        return {"pickle": blob}


def decode_spec_payload(payload: Dict[str, Any]) -> AnalysisSpec:
    """Inverse of :func:`encode_spec_payload`.

    Codec payloads decode without a factory allowlist: the journal replays
    only specs this same service already accepted (and allowlist-checked)
    at submission time.
    """
    if "codec" in payload:
        return spec_from_dict(payload["codec"], allowed_factory_prefixes=None)
    if "pickle" in payload:
        return pickle.loads(base64.b64decode(payload["pickle"]))
    raise ValueError(
        f"journal spec payload carries neither 'codec' nor 'pickle': "
        f"{sorted(payload)}"
    )


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal line."""

    event: str
    job_id: str
    ts: float
    spec: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


class JobJournal:
    """Append-only JSONL job journal (see the module docstring).

    Parameters
    ----------
    path:
        The journal file; created (with its parent directory) on first
        append.
    fsync:
        ``False`` (default): each record is flushed to the OS — durable
        against process death, not against power loss.  ``True``: every
        append is fsynced — durable, at ~1 ms/record on most disks.
    auto_compact_records:
        Compact automatically once this many records have been appended
        since the journal was opened or last compacted (``None`` disables
        self-compaction).

    The journal expects a single writing process (the job manager that
    owns it); appends are thread-safe within that process.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        auto_compact_records: Optional[int] = 10_000,
    ):
        if auto_compact_records is not None and auto_compact_records < 1:
            raise ValueError(
                f"auto_compact_records must be >= 1, got {auto_compact_records}"
            )
        self.path = os.fspath(path)
        self.fsync = fsync
        self.auto_compact_records = auto_compact_records
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._appended_since_compact = 0
        self._warned_torn = False

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def _file(self) -> int:
        if self._fd is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._fd

    def append(
        self,
        event: str,
        job_id: str,
        spec: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Append one record; the write is a single complete line."""
        if event not in JOURNAL_EVENTS:
            raise ValueError(
                f"unknown journal event {event!r}; expected one of "
                f"{JOURNAL_EVENTS}"
            )
        record: Dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "event": event,
            "id": job_id,
            "ts": time.time(),
        }
        if spec is not None:
            record["spec"] = spec
        if error is not None:
            record["error"] = error
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            fd = self._file()
            # One write() of one complete line through O_APPEND: a reader
            # (or the replaying restart) never sees an interleaved or
            # partial record from a *completed* append.
            os.write(fd, data)
            if self.fsync:
                os.fsync(fd)
            self._appended_since_compact += 1
            should_compact = (
                self.auto_compact_records is not None
                and self._appended_since_compact >= self.auto_compact_records
            )
        if should_compact:
            self.compact()

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[JournalRecord]:
        """Parse the journal, skipping (and warning once about) torn lines."""
        try:
            with open(self.path, "rb") as handle:
                lines = handle.read().split(b"\n")
        except OSError:
            return
        for index, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                payload = json.loads(raw.decode("utf-8"))
                record = JournalRecord(
                    event=payload["event"],
                    job_id=payload["id"],
                    ts=float(payload["ts"]),
                    spec=payload.get("spec"),
                    error=payload.get("error"),
                )
            except (ValueError, KeyError, TypeError):
                if not self._warned_torn:
                    self._warned_torn = True
                    warnings.warn(
                        f"journal {self.path!r}: skipping unparseable record "
                        f"on line {index + 1} (torn write at a crash; the "
                        "append it belonged to was never acknowledged)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
            yield record

    def replay(self) -> Dict[str, JournalRecord]:
        """Jobs a restart must re-queue: ``job id -> its submit record``.

        Folds the journal in order; a job is *pending* when its latest
        event is not terminal.  Pending jobs come back in first-submission
        order, each carrying the spec payload of its most recent
        ``submit`` record.
        """
        submits: Dict[str, JournalRecord] = {}
        terminal: Dict[str, bool] = {}
        for record in self.records():
            if record.event == "submit":
                if record.job_id not in submits:
                    submits[record.job_id] = record
                elif record.spec is not None:
                    # A re-armed job: keep the first-submission slot (for
                    # ordering) but the freshest spec payload.
                    first = submits[record.job_id]
                    submits[record.job_id] = JournalRecord(
                        event="submit",
                        job_id=record.job_id,
                        ts=first.ts,
                        spec=record.spec,
                    )
                terminal[record.job_id] = False
            elif record.event in TERMINAL_EVENTS:
                terminal[record.job_id] = True
            else:  # start: the job is live again
                terminal.setdefault(record.job_id, False)
        return {
            job_id: record
            for job_id, record in submits.items()
            if not terminal.get(job_id, False)
        }

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #

    def compact(self) -> int:
        """Drop terminal histories; returns the number of records removed.

        Rewrites the file atomically (temp file + ``os.replace``), keeping
        one ``submit`` record per still-pending job.  Safe to call at any
        time from the owning process; concurrent appends are serialized
        against the rewrite.
        """
        with self._lock:
            all_records = list(self.records())
            pending = self.replay()
            keep: List[JournalRecord] = list(pending.values())
            if len(keep) == len(all_records):
                self._appended_since_compact = 0
                return 0
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=parent, prefix=".journal-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for record in keep:
                        payload: Dict[str, Any] = {
                            "v": JOURNAL_VERSION,
                            "event": record.event,
                            "id": record.job_id,
                            "ts": record.ts,
                        }
                        if record.spec is not None:
                            payload["spec"] = record.spec
                        handle.write(
                            json.dumps(payload, sort_keys=True, separators=(",", ":"))
                            + "\n"
                        )
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
            # The old fd appends to the unlinked inode; reopen on demand.
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None
            self._appended_since_compact = 0
            return len(all_records) - len(keep)
