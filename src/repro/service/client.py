"""A stdlib HTTP client for the study-submission service.

:class:`ServiceClient` wraps the :mod:`repro.service.app` endpoints in the
vocabulary of the Python API: it encodes specs through
:func:`repro.api.spec_to_dict`, polls job status, and decodes returned
payloads back into :class:`~repro.api.results.Result` records — so

    client = ServiceClient(server.url)
    result = client.run(DCOp(circuit=chain))

is the over-the-wire equivalent of ``Session(...).run(spec)`` and returns a
bitwise-JSON-identical result (pinned in the test-suite).  Everything rides
on :mod:`urllib.request`; no third-party HTTP stack is required.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.codec import spec_to_dict
from repro.api.results import Result
from repro.api.specs import AnalysisSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying the status and server message."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to a running study service (see the module docstring).

    Parameters
    ----------
    base_url:
        The server root, e.g. ``"http://127.0.0.1:8080"``.
    timeout_s:
        Socket timeout per request.
    retries:
        How many times a *transient* failure — a connection error, or a
        503 from an overloaded/shutting-down server — is retried before
        :class:`ServiceError` escapes (default 2, so up to three
        attempts).  Every service request is safe to retry: job ids are
        spec content hashes, so a resubmitted ``POST /studies`` dedupes
        onto the same job.  Permanent errors (4xx) never retry.
    backoff_s:
        First retry delay; doubles per retry.  A 503 carrying a
        ``Retry-After`` header uses the server's number instead — the
        server knows its queue better than any client-side guess.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.2,
        _sleep: Any = time.sleep,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = _sleep

    # ------------------------------------------------------------------ #
    # raw HTTP
    # ------------------------------------------------------------------ #

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON exchange (with transient-failure retry, see the class
        docstring); raises :class:`ServiceError` on non-2xx."""
        url = self.base_url + path
        if query:
            filtered = {k: v for k, v in query.items() if v is not None}
            if filtered:
                url += "?" + urllib.parse.urlencode(filtered)
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=body, headers=headers, method=method
            )
            retry_after: Optional[float] = None
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                detail = error.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(detail).get("error", detail)
                except json.JSONDecodeError:
                    message = detail or error.reason
                failure = ServiceError(error.code, message)
                if error.code != 503:
                    raise failure from None
                retry_after = self._parse_retry_after(error.headers)
            except urllib.error.URLError as error:
                failure = ServiceError(0, f"cannot reach {url}: {error.reason}")
            if attempt >= self.retries:
                raise failure from None
            if retry_after is None:
                retry_after = self.backoff_s * (2.0 ** attempt)
            self._sleep(retry_after)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _parse_retry_after(headers: Any) -> Optional[float]:
        raw = headers.get("Retry-After") if headers is not None else None
        if raw is None:
            return None
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return None
        return max(0.0, value)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def submit(self, spec: Union[AnalysisSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """POST a spec (object or ready wire dict); returns the submission."""
        payload = spec_to_dict(spec) if isinstance(spec, AnalysisSpec) else spec
        return self.request("POST", "/studies", payload=payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/studies/{job_id}")

    def wait(
        self, job_id: str, timeout_s: float = 120.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the final status payload.

        Raises :class:`ServiceError` (status 0) on timeout and leaves
        failed jobs to the caller — inspect ``payload["state"]``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0,
                    f"job {job_id} still {status['state']} after {timeout_s:g}s",
                )
            time.sleep(poll_s)

    def result_json(
        self, job_id: str, fields: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """The raw Result payload, optionally restricted to some sections."""
        query = {"fields": ",".join(fields)} if fields else None
        return self.request("GET", f"/studies/{job_id}/result", query=query)

    def result(self, job_id: str) -> Result:
        """The finished job's result as a :class:`~repro.api.results.Result`."""
        return Result.from_jsonable(self.result_json(job_id))

    def run(
        self,
        spec: Union[AnalysisSpec, Dict[str, Any]],
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> Result:
        """Submit, wait, fetch: the over-the-wire ``Session.run``.

        Raises :class:`ServiceError` if the job fails, carrying the
        server-side error message.
        """
        submission = self.submit(spec)
        status = self.wait(submission["id"], timeout_s=timeout_s, poll_s=poll_s)
        if status["state"] != "done":
            raise ServiceError(0, f"job failed: {status.get('error')}")
        return self.result(submission["id"])

    def results(
        self,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        fields: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, Any]]:
        """One page of the store listing (raw payloads, newest API page)."""
        query: Dict[str, Any] = {"kind": kind, "limit": limit, "offset": offset}
        if fields:
            query["fields"] = ",".join(fields)
        return self.request("GET", "/results", query=query)["results"]

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")
